//! Regenerates **Table IV** — clustering results on the Huse-style 16S
//! simulated dataset at 3 % and 5 % sequencing error, all eight
//! methods, reporting cluster counts against the 43-genome ground
//! truth and weighted within-cluster similarity.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin table4 [-- --scale 0.002]
//! ```

use mrmc_bench::{fmt_sim, print_row, sixteen_s_methods, timed, HarnessArgs};
use mrmc_simulate::huse_16s;

fn main() {
    let args = HarnessArgs::parse(0.002);
    let theta = 0.95;
    // Report clusters with ≥ 2 members: error-bearing reads that fall
    // out as singletons are sequencing noise, not OTUs (the paper
    // applies a size floor for the same reason).
    let min_size = 2;
    println!(
        "Table IV — 16S simulated dataset, 43 reference genomes (scale {}, θ = {theta}, k = 15, 50 hashes)\n",
        args.scale
    );
    let widths = [14usize, 12, 9, 8];
    print_row(
        &["Method", "error", "#Cluster", "W.Sim"].map(str::to_string),
        &widths,
    );

    for error in [0.03f64, 0.05] {
        let dataset = huse_16s(error, args.scale, args.seed);
        for (name, method) in sixteen_s_methods(theta) {
            let outcome = timed(|| method(&dataset.reads));
            print_row(
                &[
                    name.to_string(),
                    format!("{:.0}%", error * 100.0),
                    outcome
                        .assignment
                        .num_clusters_at_least(min_size)
                        .to_string(),
                    fmt_sim(&outcome.assignment, &dataset.reads, 60),
                ],
                &widths,
            );
        }
        println!("  (ground truth: 43 genomes)");
    }
    println!(
        "\nExpected shape: minhash methods (MrMC-MinH, MC-LSH) land nearest the 43-genome truth at\n\
         both error levels; W.Sim is high (~95-100%) and similar everywhere. (The paper's DOTUR/Mothur\n\
         over-splitting reflects singleton counting in their pipeline — see EXPERIMENTS.md.)"
    );
}
