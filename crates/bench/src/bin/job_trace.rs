//! `job_trace` — the structured-tracing demonstrator and validator.
//!
//! Runs the MrMC-MinH pipeline with a [`Tracer`] attached, three ways:
//!
//! * **real, dense** — the hierarchical pipeline on the thread-pool
//!   engine, fault-free and under a combined chaos plan (panic +
//!   straggler + node death). Checks that tracing is passive (output
//!   bit-identical to an untraced run) and that the span ledger is
//!   deterministic (identical signature across repeated runs of the
//!   same seed and fault plan);
//! * **real, banded** — the banded-LSH greedy pipeline (four MR
//!   stages, with reduce phases and shuffle barriers on the trace);
//! * **simulated** — the dense run's measured tasks list-scheduled
//!   onto virtual EMR clusters of 2–12 nodes
//!   ([`Pipeline::simulate_on_traced`]), where the critical-path
//!   analyzer must attribute ≥ 95 % of the simulated makespan and
//!   agree with the untraced simulator's total.
//!
//! Artifacts land under `results/`: Chrome `trace_event` JSON for
//! every run (open in `chrome://tracing` / Perfetto), an ASCII Gantt
//! of the 6-node simulated schedule, and a machine-readable summary.
//! Any violated check makes the process exit non-zero — this is the
//! CI `trace-smoke` step.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin job_trace -- --scale 0.5 --seed 7
//! ```

use std::sync::Arc;

use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_bench::json::{write_file, Json};
use mrmc_bench::HarnessArgs;
use mrmc_mapreduce::chaos::{FaultPlan, Phase};
use mrmc_mapreduce::{
    chrome_trace, critical_path, render_gantt, ClusterSpec, JobCostModel, NoFaults, Tracer,
};
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

const GANTT_WIDTH: usize = 96;

fn two_species(n: usize, seed: u64) -> Vec<mrmc_seqio::SeqRecord> {
    let spec = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "a".into(),
                gc: 0.40,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "b".into(),
                gc: 0.60,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 50_000,
    };
    let sim = ReadSimulator::new(800, ErrorModel::with_total_rate(0.002));
    spec.generate("trace", n, &sim, seed).reads
}

fn dense_config() -> MrMcConfig {
    MrMcConfig {
        kmer: 5,
        num_hashes: 64,
        theta: 0.55,
        mode: Mode::Hierarchical,
        map_tasks: 8,
        ..Default::default()
    }
}

/// Category durations of a critical path as a JSON object (seconds).
fn categories_json(cp: &mrmc_mapreduce::CriticalPath) -> Json {
    Json::obj(
        mrmc_mapreduce::obs::trace::CATEGORIES
            .iter()
            .map(|&c| (c.name(), Json::fixed(cp.category_ns(c) as f64 / 1e9, 6))),
    )
}

fn main() {
    // Injected task panics are caught and retried by the engine; keep
    // their backtraces out of the report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("chaos: injected panic"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let args = HarnessArgs::parse(1.0);
    let num_reads = ((120.0 * args.scale).round() as usize).max(24);
    let reads = two_species(num_reads, args.seed);
    std::fs::create_dir_all("results").expect("creating results/");
    let mut failures: Vec<String> = Vec::new();

    eprintln!("job_trace: {num_reads} reads, seed {}", args.seed);

    // ---- Real run, dense hierarchical pipeline. ----
    let runner = MrMcMinH::new(dense_config());
    let baseline = runner.run(&reads).expect("untraced dense run");

    let tracer = Arc::new(Tracer::new());
    let traced = runner
        .run_traced(&reads, &NoFaults, tracer.clone())
        .expect("traced dense run");
    if traced.assignment != baseline.assignment || traced.dendrogram != baseline.dendrogram {
        failures.push("tracing changed the dense clustering output".into());
    }
    let repeat = Arc::new(Tracer::new());
    runner
        .run_traced(&reads, &NoFaults, repeat.clone())
        .expect("repeat traced dense run");
    if tracer.ledger().signature() != repeat.ledger().signature() {
        failures.push("dense span ledger differs across identical runs".into());
    }
    let dense_ledger = tracer.ledger();
    std::fs::write("results/TRACE_real_dense.json", chrome_trace(&dense_ledger))
        .expect("writing results/TRACE_real_dense.json");
    eprintln!(
        "real dense: {} spans, {} events, {:.1} ms makespan → results/TRACE_real_dense.json",
        dense_ledger.spans.len(),
        dense_ledger.events.len(),
        dense_ledger.makespan_ns() as f64 / 1e6
    );

    // ---- Real run under a combined fault plan (job 0 = sketch,
    // job 1 = similarity), traced twice with the same plan. ----
    let plan = FaultPlan::new()
        .task_panic(0, Phase::Map, 1, 2)
        .task_slowdown(1, Phase::Map, 0, 15)
        .node_death_after_map(0, 2);
    let chaos_tracers = [Arc::new(Tracer::new()), Arc::new(Tracer::new())];
    for t in &chaos_tracers {
        let run = runner
            .run_traced(&reads, &plan.clone().injector(), t.clone())
            .expect("traced chaotic run");
        if run.assignment != baseline.assignment {
            failures.push("chaotic traced run not bit-identical to clean output".into());
        }
    }
    let chaos_ledger = chaos_tracers[0].ledger();
    if chaos_ledger.signature() != chaos_tracers[1].ledger().signature() {
        failures.push("chaotic span ledger differs across identical fault plans".into());
    }
    let recovery_spans = chaos_ledger
        .spans
        .iter()
        .filter(|s| s.category == mrmc_mapreduce::obs::trace::Category::Recovery)
        .count();
    if recovery_spans == 0 {
        failures.push("chaotic trace recorded no recovery spans".into());
    }
    std::fs::write("results/TRACE_real_chaos.json", chrome_trace(&chaos_ledger))
        .expect("writing results/TRACE_real_chaos.json");
    eprintln!(
        "real chaos: {} spans ({recovery_spans} recovery), {} events → results/TRACE_real_chaos.json",
        chaos_ledger.spans.len(),
        chaos_ledger.events.len(),
    );

    // ---- Real run, banded greedy pipeline (reduce-bearing stages). ----
    let banded_runner = MrMcMinH::new(dense_config().greedy().banded());
    let banded_baseline = banded_runner.run(&reads).expect("untraced banded run");
    let banded_tracer = Arc::new(Tracer::new());
    let banded = banded_runner
        .run_traced(&reads, &NoFaults, banded_tracer.clone())
        .expect("traced banded run");
    if banded.assignment != banded_baseline.assignment {
        failures.push("tracing changed the banded clustering output".into());
    }
    let banded_ledger = banded_tracer.ledger();
    if banded_ledger.jobs.len() < 4 {
        failures.push(format!(
            "banded trace has {} jobs, expected the 4 MR stages",
            banded_ledger.jobs.len()
        ));
    }
    if !banded_ledger.spans.iter().any(|s| s.name == "shuffle") {
        failures.push("banded trace has no shuffle barrier span".into());
    }
    std::fs::write(
        "results/TRACE_real_banded.json",
        chrome_trace(&banded_ledger),
    )
    .expect("writing results/TRACE_real_banded.json");
    eprintln!(
        "real banded: {} jobs, {} spans → results/TRACE_real_banded.json",
        banded_ledger.jobs.len(),
        banded_ledger.spans.len()
    );

    // ---- Simulated 2–12-node sweep over the dense run's pipeline. ----
    let model = JobCostModel::default();
    let mut sweep_rows = Vec::new();
    for n in (2..=12).step_by(2) {
        let sim_tracer = Tracer::new();
        let reports =
            traced
                .pipeline
                .simulate_on_traced(&ClusterSpec::m1_large(n), &model, &sim_tracer);
        let sim_total: f64 = reports.iter().map(|r| r.total()).sum();
        let ledger = sim_tracer.ledger();
        let cp = critical_path(&ledger);

        let makespan_s = cp.makespan_ns as f64 / 1e9;
        let agreement = (makespan_s - sim_total).abs() / sim_total.max(1e-12);
        if agreement > 1e-6 {
            failures.push(format!(
                "{n}-node trace makespan {makespan_s:.6}s disagrees with \
                 simulate_on total {sim_total:.6}s"
            ));
        }
        if cp.coverage() < 0.95 {
            failures.push(format!(
                "{n}-node critical path attributes only {:.1}% of the makespan",
                cp.coverage() * 100.0
            ));
        }
        std::fs::write(
            format!("results/TRACE_sim_{n}nodes.json"),
            chrome_trace(&ledger),
        )
        .unwrap_or_else(|e| panic!("writing results/TRACE_sim_{n}nodes.json: {e}"));

        eprintln!(
            "simulated {n:>2} nodes: makespan {:>8.2}s, critical path covers {:>5.1}%",
            makespan_s,
            cp.coverage() * 100.0
        );
        if n == 6 {
            println!("critical path, 6-node simulated cluster:\n{}", cp.report());
            let gantt = render_gantt(&ledger, GANTT_WIDTH);
            println!("6-node simulated schedule (#=compute ==shuffle .=overhead !=recovery):");
            println!("{gantt}");
            std::fs::write("results/TRACE_gantt.txt", &gantt)
                .expect("writing results/TRACE_gantt.txt");
        }
        sweep_rows.push(Json::obj([
            ("nodes", Json::from(n)),
            ("makespan_seconds", Json::fixed(makespan_s, 6)),
            ("coverage", Json::fixed(cp.coverage(), 6)),
            ("critical_path_steps", cp.steps.len().into()),
            ("categories_seconds", categories_json(&cp)),
        ]));
    }

    // ---- Summary artifact. ----
    let summary = Json::obj([
        ("seed", Json::from(args.seed)),
        ("reads", num_reads.into()),
        (
            "failures",
            Json::arr(failures.iter().map(|f| f.as_str().into())),
        ),
        (
            "real",
            Json::obj([
                ("dense_spans", Json::from(dense_ledger.spans.len())),
                ("dense_events", dense_ledger.events.len().into()),
                ("chaos_spans", chaos_ledger.spans.len().into()),
                ("chaos_recovery_spans", recovery_spans.into()),
                ("banded_jobs", banded_ledger.jobs.len().into()),
                ("banded_spans", banded_ledger.spans.len().into()),
            ]),
        ),
        ("simulated", Json::Arr(sweep_rows)),
    ]);
    let summary_path = args
        .json
        .clone()
        .unwrap_or_else(|| "results/TRACE_summary.json".to_string());
    write_file(&summary_path, &summary);
    eprintln!("wrote trace summary to {summary_path}");

    if !failures.is_empty() {
        eprintln!("job_trace: FAILURE");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "job_trace: all checks passed (passive tracing, deterministic ledgers, \
         ≥95% critical-path attribution)"
    );
}
