//! `shuffle_bench` — the sort-merge shuffle microbench.
//!
//! Runs the same shuffle-heavy word-count-shaped job (short string
//! keys, ~256 values per key, `--scale 1` = 1M pairs, 8 reducers)
//! through two data planes:
//!
//! * **merged** — the engine's sort-merge shuffle (map-side grouped
//!   sorted runs, move-based barrier, k-way merge reduce);
//! * **legacy** — the pre-overhaul plane, reimplemented here verbatim:
//!   every map attempt clones its chunk, partitions are gathered by a
//!   single-threaded flat `extend`, and every reduce task clones its
//!   whole partition, stable-sorts it, and groups with a per-group
//!   `vec![first]` allocation (with a combiner, the map side pays the
//!   same stable sort + grouping a second time).
//!
//! Both planes consume an owned copy of the input (the engines own
//! their input and drop it inside the job), run the same mapper and
//! reducer with the same worker pool, and are measured with and
//! without a combiner; outputs are asserted bit-identical and the
//! best-of-N times reported. The JSON summary (stdout, plus
//! `--json <path>`) is what CI uploads as `BENCH_shuffle.json`.
//!
//! A second section runs the *banded clustering pipeline* end to end
//! on the Huse 16S corpus (`--scale 1` = 50k reads) under both wire
//! formats — raw (struct-width pricing, hash partitioning) and
//! compact (bit-packed band keys, delta-encoded id runs, run-merging
//! combiners, similarity-aware partitioning) — asserts the cluster
//! assignments bit-identical, and reports the per-stage and total
//! SHUFFLE_BYTES ratio. `--min-banded-ratio <r>` turns the ratio into
//! a CI gate: the process exits non-zero if compaction regresses
//! below `r`.
//!
//! The banded section also prices the metrics plane: the engine
//! records nothing during a run, so its entire cost is one post-run
//! `Pipeline::export_metrics` — timed, asserted deterministic
//! (byte-identical snapshots across two exports) and gated as a
//! percentage of the run with `--max-metrics-overhead-pct`.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin shuffle_bench -- --json BENCH_shuffle.json
//! ```

use std::hint::black_box;
use std::time::Instant;

use mrmc::{MrMcConfig, MrMcMinH};
use mrmc_bench::json::Json;
use mrmc_bench::{alloc, HarnessArgs};
use mrmc_mapreduce::engine::{run_job, run_job_with_combiner};
use mrmc_mapreduce::job::{
    partition_of, Combiner, JobConfig, Mapper, Reducer, ShuffleSized, TaskContext,
};
use mrmc_mapreduce::IdRun;
use mrmc_simulate::huse_16s;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAPS: usize = 16;
const REDUCERS: usize = 8;
const ITERS: usize = 7;

/// One small pair per record: the input carries a short heap-backed
/// key (the case the old plane's byte accounting got wrong) that the
/// map emits as-is, so the run measures the data plane, not key
/// construction. Heap-backed input is also where the old plane's
/// per-task chunk clone hurts.
struct PairMapper;
impl Mapper for PairMapper {
    type InKey = u32;
    type InValue = String;
    type OutKey = String;
    type OutValue = u32;
    fn map(&self, id: u32, key: String, ctx: &mut TaskContext<String, u32>) {
        ctx.emit(key, id);
    }
    fn key_wire_size(&self, key: &String) -> usize {
        key.shuffle_size()
    }
    fn value_wire_size(&self, value: &u32) -> usize {
        value.shuffle_size()
    }
}

struct SumCombiner;
impl Combiner for SumCombiner {
    type Key = String;
    type Value = u32;
    fn combine(&self, _k: &String, vs: Vec<u32>) -> Vec<u32> {
        vec![vs.iter().sum()]
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    type InKey = String;
    type InValue = u32;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u32>, ctx: &mut TaskContext<String, u64>) {
        ctx.emit(k, vs.iter().map(|&v| u64::from(v)).sum());
    }
}

/// The old engine's `chunk_input`: contiguous chunks moved (not
/// copied) out of the owned input via `split_off`.
fn chunk_input(mut input: Vec<(u32, String)>, n: usize) -> Vec<Vec<(u32, String)>> {
    let total = input.len();
    let (base, extra) = (total / n, total % n);
    let mut sizes: Vec<usize> = (0..n).map(|i| base + usize::from(i < extra)).collect();
    sizes.reverse();
    let mut chunks = Vec::with_capacity(n);
    for size in sizes {
        let tail = input.split_off(input.len() - size);
        chunks.push(tail);
    }
    chunks.reverse();
    chunks
}

/// The old engine's one-result-per-task slot vector.
type TaskSlots<T> = Vec<std::sync::Mutex<Option<T>>>;

/// The pre-overhaul data plane: parallel map over per-attempt cloned
/// chunks, optional map-side stable-sort + group + combine, a
/// single-threaded flat-Vec gather, and a parallel reduce that clones
/// its whole partition, stable-sorts it, and groups with `vec![first]`.
/// Consumes its input like the old engine did (chunks drop with the
/// job).
fn legacy_run(input: Vec<(u32, String)>, workers: usize, combine: bool) -> Vec<(String, u64)> {
    let chunks = chunk_input(input, MAPS);
    let workers = workers.max(1);

    // ---- Map: each attempt clones its chunk, partitions in emission
    // order (post-combine order when combining).
    let map_slots: TaskSlots<Vec<Vec<(String, u32)>>> =
        (0..MAPS).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..workers {
            let chunks = &chunks;
            let map_slots = &map_slots;
            s.spawn(move || {
                for i in (w..MAPS).step_by(workers) {
                    let chunk = chunks[i].clone();
                    let mut ctx = TaskContext::new();
                    for (k, v) in chunk {
                        PairMapper.map(k, v, &mut ctx);
                    }
                    let (mut pairs, _) = ctx.into_parts();
                    if combine {
                        // Old combiner path: stable sort, peekable
                        // grouping, key.clone() per combined value.
                        pairs.sort_by(|a, b| a.0.cmp(&b.0));
                        let mut combined = Vec::with_capacity(pairs.len());
                        let mut iter = pairs.into_iter().peekable();
                        while let Some((key, first)) = iter.next() {
                            let mut group = vec![first];
                            while iter.peek().is_some_and(|(k, _)| *k == key) {
                                group.push(iter.next().expect("peeked").1);
                            }
                            for v in SumCombiner.combine(&key, group) {
                                combined.push((key.clone(), v));
                            }
                        }
                        pairs = combined;
                    }
                    let mut partitions: Vec<Vec<(String, u32)>> =
                        (0..REDUCERS).map(|_| Vec::new()).collect();
                    for (k, v) in pairs {
                        partitions[partition_of(&k, REDUCERS)].push((k, v));
                    }
                    *map_slots[i].lock().expect("slot") = Some(partitions);
                }
            });
        }
    });

    // ---- Shuffle: single-threaded flat extend, map order.
    let mut partitions: Vec<Vec<(String, u32)>> = (0..REDUCERS).map(|_| Vec::new()).collect();
    for slot in map_slots {
        let task_parts = slot.into_inner().expect("slot").expect("map ran");
        for (p, pairs) in task_parts.into_iter().enumerate() {
            partitions[p].extend(pairs);
        }
    }

    // ---- Reduce: clone, stable sort, peekable vec![first] grouping.
    let reduce_slots: TaskSlots<Vec<(String, u64)>> =
        (0..REDUCERS).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..workers {
            let partitions = &partitions;
            let reduce_slots = &reduce_slots;
            s.spawn(move || {
                for p in (w..REDUCERS).step_by(workers) {
                    let mut pairs = partitions[p].clone();
                    pairs.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut ctx = TaskContext::new();
                    let mut iter = pairs.into_iter().peekable();
                    while let Some((key, first)) = iter.next() {
                        let mut group = vec![first];
                        while iter.peek().is_some_and(|(k, _)| *k == key) {
                            group.push(iter.next().expect("peeked").1);
                        }
                        SumReducer.reduce(key, group, &mut ctx);
                    }
                    let (out, _) = ctx.into_parts();
                    *reduce_slots[p].lock().expect("slot") = Some(out);
                }
            });
        }
    });
    let mut output = Vec::new();
    for slot in reduce_slots {
        output.extend(slot.into_inner().expect("slot").expect("reduce ran"));
    }
    output
}

struct ModeResult {
    legacy_secs: f64,
    merged_secs: f64,
    shuffled_pairs: u64,
    shuffled_bytes: u64,
    shuffle_runs: u64,
}

impl ModeResult {
    fn speedup(&self) -> f64 {
        self.legacy_secs / self.merged_secs
    }
}

fn measure(
    label: &str,
    input: &[(u32, String)],
    cfg: &JobConfig,
    workers: usize,
    combine: bool,
) -> ModeResult {
    let mut legacy_best = f64::INFINITY;
    let mut merged_best = f64::INFINITY;
    let mut merged_result = None;
    let mut legacy_output = Vec::new();
    // Interleave the planes so neither systematically benefits from a
    // warm allocator; keep the best time of each.
    for iter in 0..ITERS {
        let owned = input.to_vec();
        let t = Instant::now();
        legacy_output = legacy_run(owned, workers, combine);
        let legacy_secs = t.elapsed().as_secs_f64();
        legacy_best = legacy_best.min(legacy_secs);

        let owned = input.to_vec();
        let t = Instant::now();
        let run = if combine {
            run_job_with_combiner(owned, MAPS, &PairMapper, &SumCombiner, &SumReducer, cfg)
        } else {
            run_job(owned, MAPS, &PairMapper, &SumReducer, cfg)
        }
        .expect("merged-plane job");
        let merged_secs = t.elapsed().as_secs_f64();
        merged_best = merged_best.min(merged_secs);
        eprintln!("{label} iter {iter}: legacy {legacy_secs:.3}s, merged {merged_secs:.3}s");
        merged_result = Some(run);
    }
    let run = merged_result.expect("ITERS > 0");
    assert_eq!(
        run.output, legacy_output,
        "{label}: sort-merge plane must be bit-identical to the legacy plane"
    );
    ModeResult {
        legacy_secs: legacy_best,
        merged_secs: merged_best,
        shuffled_pairs: run.shuffled_pairs,
        shuffled_bytes: run.shuffled_bytes,
        shuffle_runs: run.shuffle_runs,
    }
}

/// One merge-path measurement: the same input run set merged
/// `iters` times through the legacy decode-concat-sort-reencode
/// oracle (`IdRun::merge_via_decode`) and the streaming plane
/// (`IdRun::merge`), with wall-clock and allocation counts from the
/// global counting allocator. Outputs are asserted byte-identical
/// before anything is timed.
struct MergePathResult {
    shape: &'static str,
    runs_per_merge: usize,
    ids_per_run: usize,
    iters: usize,
    legacy_allocs_per_merge: f64,
    streaming_allocs_per_merge: f64,
    legacy_secs: f64,
    streaming_secs: f64,
}

impl MergePathResult {
    fn alloc_ratio(&self) -> f64 {
        self.legacy_allocs_per_merge / self.streaming_allocs_per_merge.max(1e-9)
    }

    fn streaming_allocs_per_run(&self) -> f64 {
        self.streaming_allocs_per_merge / self.runs_per_merge as f64
    }

    fn speedup(&self) -> f64 {
        self.legacy_secs / self.streaming_secs.max(1e-12)
    }
}

fn bench_merge_shape(
    shape: &'static str,
    runs: Vec<IdRun>,
    ids_per_run: usize,
    iters: usize,
) -> MergePathResult {
    let legacy = IdRun::merge_via_decode(&runs).expect("legacy merge");
    let streaming = IdRun::merge(&runs).expect("streaming merge");
    assert_eq!(
        streaming.as_bytes(),
        legacy.as_bytes(),
        "{shape}: streaming merge must be byte-identical to the decode-merge oracle"
    );

    let t = Instant::now();
    let (_, legacy_allocs) = alloc::count_allocs(|| {
        for _ in 0..iters {
            black_box(IdRun::merge_via_decode(black_box(&runs)).expect("legacy merge"));
        }
    });
    let legacy_secs = t.elapsed().as_secs_f64() / iters as f64;

    let t = Instant::now();
    let (_, streaming_allocs) = alloc::count_allocs(|| {
        for _ in 0..iters {
            black_box(IdRun::merge(black_box(&runs)).expect("streaming merge"));
        }
    });
    let streaming_secs = t.elapsed().as_secs_f64() / iters as f64;

    MergePathResult {
        shape,
        runs_per_merge: runs.len(),
        ids_per_run,
        iters,
        legacy_allocs_per_merge: legacy_allocs as f64 / iters as f64,
        streaming_allocs_per_merge: streaming_allocs as f64 / iters as f64,
        legacy_secs,
        streaming_secs,
    }
}

/// Measure the combine/reduce merge primitive on its two hot shapes:
///
/// * **combiner** — one map task's local group for a hot bucket key:
///   many ascending singleton runs (the splice fast path);
/// * **reducer** — one reduce group across map tasks: a handful of
///   post-combine runs with interleaved id ranges (the k-way heap
///   path).
fn merge_path_bench(seed: u64) -> Vec<MergePathResult> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d65_7267);

    // Combiner shape: 256 strictly-ascending singletons, the order a
    // map task emits a hot key's ids in.
    let mut id = 0u32;
    let singletons: Vec<IdRun> = (0..256)
        .map(|_| {
            id += rng.random_range(1u32..32);
            IdRun::singleton(id)
        })
        .collect();

    // Reducer shape: 16 runs of 128 ids whose ranges interleave, so
    // the splice pre-scan passes (ascending firsts) but the heap merge
    // must dedup-free interleave them — the worst case for the
    // streaming path.
    let stride = 16u32;
    let overlapping: Vec<IdRun> = (0..16u32)
        .map(|r| {
            let ids: Vec<u32> = (0..128u32).map(|t| r + t * stride).collect();
            IdRun::from_sorted(&ids).expect("strided ids are strictly increasing")
        })
        .collect();

    vec![
        bench_merge_shape("combiner-singletons", singletons, 1, 4_000),
        bench_merge_shape("reducer-overlapping", overlapping, 128, 2_000),
    ]
}

struct BandedWire {
    reads: usize,
    /// `(stage, raw bytes, compact bytes)` for the two banding stages.
    stages: Vec<(String, u64, u64)>,
    raw_bytes: u64,
    compact_bytes: u64,
    raw_secs: f64,
    compact_secs: f64,
    /// Wall-clock for one post-run `Pipeline::export_metrics` +
    /// snapshot over the compact pipeline — the *entire* cost the
    /// metrics plane adds to an engine run.
    metrics_export_secs: f64,
    /// Keys the export produced (counters + histograms).
    metrics_keys: usize,
}

impl BandedWire {
    fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / (self.compact_bytes.max(1)) as f64
    }
}

/// Run the banded clustering pipeline under both wire formats on the
/// Huse 16S corpus and account the banding stages' shuffle traffic.
/// Panics if the two formats disagree on a single cluster assignment.
fn banded_wire_comparison(scale: f64, seed: u64) -> BandedWire {
    let reads = huse_16s(0.03, (50_000.0 * scale / 345_000.0).min(1.0), seed).reads;
    let compact_cfg = MrMcConfig::sixteen_s().banded();
    let raw_cfg = compact_cfg.raw_wire();

    let t = Instant::now();
    let raw = MrMcMinH::new(raw_cfg).run(&reads).expect("raw-wire run");
    let raw_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let compact = MrMcMinH::new(compact_cfg)
        .run(&reads)
        .expect("compact-wire run");
    let compact_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        raw.assignment, compact.assignment,
        "wire formats must produce bit-identical clusterings"
    );

    // The wire layer only changes the two banding stages; sketch and
    // verify shuffle the same payloads either way.
    let banding = ["band-signatures", "candidate-dedup"];
    let mut stages = Vec::new();
    let (mut raw_bytes, mut compact_bytes) = (0u64, 0u64);
    for name in banding {
        let by_name = |p: &mrmc_mapreduce::pipeline::Pipeline| {
            p.stages()
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.shuffled_bytes)
                .expect("banded pipeline stage")
        };
        let (r, c) = (by_name(&raw.pipeline), by_name(&compact.pipeline));
        raw_bytes += r;
        compact_bytes += c;
        stages.push((name.to_string(), r, c));
    }

    // The engine's metrics plane is passive: nothing is recorded while
    // the job runs (the clusterings above were produced with no
    // registry in sight), and the whole cost of lighting it up is one
    // post-run export. Price that export, and pin its determinism —
    // two exports of the same pipeline must render byte-identically.
    let registry = mrmc_obs::MetricsRegistry::new();
    let t = Instant::now();
    compact.pipeline.export_metrics(&registry);
    let snap = registry.snapshot();
    let metrics_export_secs = t.elapsed().as_secs_f64();
    let again = mrmc_obs::MetricsRegistry::new();
    compact.pipeline.export_metrics(&again);
    assert_eq!(
        snap.render_text(),
        again.snapshot().render_text(),
        "metrics export must be deterministic for a fixed pipeline"
    );
    let metrics_keys = snap.counters.len() + snap.histograms.len();

    BandedWire {
        reads: reads.len(),
        stages,
        raw_bytes,
        compact_bytes,
        raw_secs,
        compact_secs,
        metrics_export_secs,
        metrics_keys,
    }
}

fn main() {
    let args = HarnessArgs::parse(1.0);
    let pairs = ((1_000_000.0 * args.scale).round() as usize).max(1_000);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // ~4k distinct keys at full scale — every reduce group gathers
    // ~256 values, the grouping-heavy shape a shuffle exists for.
    let key_space = (pairs / 256).max(16);
    let keys: Vec<String> = (0..key_space).map(|k| format!("k{k:06}")).collect();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let input: Vec<(u32, String)> = (0..pairs as u32)
        .map(|id| (id, keys[rng.random_range(0..key_space)].clone()))
        .collect();
    eprintln!(
        "shuffle_bench: {pairs} pairs, {key_space} keys, {MAPS} maps, {REDUCERS} reducers, \
         {workers} workers, {ITERS} iters, seed {}",
        args.seed
    );

    let cfg = JobConfig::named("shuffle-bench")
        .reducers(REDUCERS)
        .workers(workers);

    let plain = measure("no-combiner", &input, &cfg, workers, false);
    let combined = measure("combiner", &input, &cfg, workers, true);

    println!("\nshuffle microbench — legacy concat-sort plane vs sort-merge plane\n");
    println!(
        "{:>14} {:>12} {:>12} {:>9}",
        "mode", "legacy (s)", "merged (s)", "speedup"
    );
    for (name, m) in [("no-combiner", &plain), ("combiner", &combined)] {
        println!(
            "{name:>14} {:>12.3} {:>12.3} {:>8.2}x",
            m.legacy_secs,
            m.merged_secs,
            m.speedup()
        );
    }
    println!(
        "\nshuffle accounting (no-combiner): {} pairs, {} payload bytes, {} sorted runs",
        plain.shuffled_pairs, plain.shuffled_bytes, plain.shuffle_runs
    );

    let merge_path = merge_path_bench(args.seed);
    println!("\nmerge path — legacy decode-merge vs streaming cursor merge\n");
    println!(
        "{:>20} {:>6} {:>12} {:>12} {:>9} {:>11} {:>9}",
        "shape", "runs", "legacy al/m", "stream al/m", "al ratio", "al/run", "speedup"
    );
    for m in &merge_path {
        println!(
            "{:>20} {:>6} {:>12.2} {:>12.2} {:>8.1}x {:>11.4} {:>8.2}x",
            m.shape,
            m.runs_per_merge,
            m.legacy_allocs_per_merge,
            m.streaming_allocs_per_merge,
            m.alloc_ratio(),
            m.streaming_allocs_per_run(),
            m.speedup()
        );
    }
    let merge_alloc_reduction = merge_path
        .iter()
        .map(|m| m.legacy_allocs_per_merge)
        .sum::<f64>()
        / merge_path
            .iter()
            .map(|m| m.streaming_allocs_per_merge)
            .sum::<f64>()
            .max(1e-9);
    println!("merge-path allocation reduction (both shapes): {merge_alloc_reduction:.1}x");

    eprintln!("\nbanded pipeline wire comparison (Huse 16S, raw vs compact)…");
    let banded = banded_wire_comparison(args.scale, args.seed);
    println!(
        "\nbanded pipeline — wire formats on {} reads (clusterings bit-identical)\n",
        banded.reads
    );
    println!(
        "{:>18} {:>14} {:>14} {:>9}",
        "stage", "raw (B)", "compact (B)", "ratio"
    );
    for (name, r, c) in &banded.stages {
        println!(
            "{name:>18} {r:>14} {c:>14} {:>8.2}x",
            *r as f64 / (*c).max(1) as f64
        );
    }
    println!(
        "{:>18} {:>14} {:>14} {:>8.2}x   (raw {:.2}s, compact {:.2}s)",
        "total",
        banded.raw_bytes,
        banded.compact_bytes,
        banded.ratio(),
        banded.raw_secs,
        banded.compact_secs,
    );

    let metrics_overhead_pct = banded.metrics_export_secs / banded.compact_secs.max(1e-12) * 100.0;
    println!(
        "\nmetrics plane: post-run export of {} engine keys in {:.6}s \
         = {:.4}% of the {:.2}s compact run (snapshots deterministic)",
        banded.metrics_keys, banded.metrics_export_secs, metrics_overhead_pct, banded.compact_secs
    );

    let banded_json = Json::obj([
        ("reads", banded.reads.into()),
        ("raw_bytes", banded.raw_bytes.into()),
        ("compact_bytes", banded.compact_bytes.into()),
        ("ratio", Json::fixed(banded.ratio(), 3)),
        ("raw_secs", Json::fixed(banded.raw_secs, 3)),
        ("compact_secs", Json::fixed(banded.compact_secs, 3)),
        ("identical_clusters", true.into()),
        (
            "stages",
            Json::arr(banded.stages.iter().map(|(name, r, c)| {
                Json::obj([
                    ("stage", Json::from(name.as_str())),
                    ("raw_bytes", (*r).into()),
                    ("compact_bytes", (*c).into()),
                    ("ratio", Json::fixed(*r as f64 / (*c).max(1) as f64, 3)),
                ])
            })),
        ),
    ]);

    let doc = Json::obj([
        ("scale", Json::from(args.scale)),
        ("seed", args.seed.into()),
        ("pairs", pairs.into()),
        ("keys", key_space.into()),
        ("maps", MAPS.into()),
        ("reducers", REDUCERS.into()),
        ("workers", workers.into()),
        ("iters", ITERS.into()),
        ("legacy_secs", Json::fixed(plain.legacy_secs, 6)),
        ("merged_secs", Json::fixed(plain.merged_secs, 6)),
        ("speedup", Json::fixed(plain.speedup(), 3)),
        ("legacy_combiner_secs", Json::fixed(combined.legacy_secs, 6)),
        ("merged_combiner_secs", Json::fixed(combined.merged_secs, 6)),
        ("speedup_combiner", Json::fixed(combined.speedup(), 3)),
        ("identical", true.into()),
        ("shuffled_pairs", plain.shuffled_pairs.into()),
        ("shuffle_bytes", plain.shuffled_bytes.into()),
        ("shuffle_runs", plain.shuffle_runs.into()),
        (
            "merge_path",
            Json::obj([
                ("alloc_reduction", Json::fixed(merge_alloc_reduction, 1)),
                (
                    "shapes",
                    Json::arr(merge_path.iter().map(|m| {
                        Json::obj([
                            ("shape", Json::from(m.shape)),
                            ("runs_per_merge", m.runs_per_merge.into()),
                            ("ids_per_run", m.ids_per_run.into()),
                            ("iters", m.iters.into()),
                            (
                                "legacy_allocs_per_merge",
                                Json::fixed(m.legacy_allocs_per_merge, 2),
                            ),
                            (
                                "streaming_allocs_per_merge",
                                Json::fixed(m.streaming_allocs_per_merge, 2),
                            ),
                            ("alloc_ratio", Json::fixed(m.alloc_ratio(), 1)),
                            (
                                "streaming_allocs_per_run",
                                Json::fixed(m.streaming_allocs_per_run(), 4),
                            ),
                            ("legacy_secs", Json::fixed(m.legacy_secs, 9)),
                            ("streaming_secs", Json::fixed(m.streaming_secs, 9)),
                            ("speedup", Json::fixed(m.speedup(), 2)),
                        ])
                    })),
                ),
            ]),
        ),
        ("banded_wire", banded_json),
        (
            "metrics_overhead",
            Json::obj([
                ("export_secs", Json::fixed(banded.metrics_export_secs, 6)),
                ("engine_keys", banded.metrics_keys.into()),
                ("pct_of_run", Json::fixed(metrics_overhead_pct, 4)),
                ("deterministic", true.into()),
            ]),
        ),
    ]);
    println!("\n{}", doc.pretty());
    if let Some(path) = &args.json {
        mrmc_bench::json::write_file(path, &doc);
        eprintln!("wrote shuffle microbench summary to {path}");
    }

    if let Some(floor) = args.min_banded_ratio {
        let ratio = banded.ratio();
        if ratio < floor {
            eprintln!(
                "FAIL: banded raw/compact shuffle-byte ratio {ratio:.3} \
                 fell below the --min-banded-ratio floor {floor:.3}"
            );
            std::process::exit(1);
        }
        eprintln!("banded wire ratio {ratio:.3} ≥ floor {floor:.3} — gate passed");
    }

    if let Some(cap) = args.max_merge_allocs_per_run {
        for m in &merge_path {
            let per_run = m.streaming_allocs_per_run();
            if per_run > cap {
                eprintln!(
                    "FAIL: {} streaming merge performed {per_run:.4} allocations per \
                     input run, above the --max-merge-allocs-per-run cap {cap:.4}",
                    m.shape
                );
                std::process::exit(1);
            }
        }
        eprintln!(
            "merge-path allocations within the {cap:.4}/run cap \
             (reduction {merge_alloc_reduction:.1}x) — gate passed"
        );
    }

    if let Some(limit) = args.max_metrics_overhead_pct {
        if metrics_overhead_pct > limit {
            eprintln!(
                "FAIL: post-run metrics export cost {metrics_overhead_pct:.4}% of the \
                 compact run, above the --max-metrics-overhead-pct cap {limit:.4}"
            );
            std::process::exit(1);
        }
        eprintln!(
            "metrics export {metrics_overhead_pct:.4}% of run within the {limit:.4}% cap \
             — gate passed"
        );
    }
}
