//! Regenerates **Table I** — the environmental DNA sample catalogue —
//! from the dataset registry, and verifies the generated read sets
//! match the described counts and lengths.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin table1 [-- --scale 0.02]
//! ```

use mrmc_bench::HarnessArgs;
use mrmc_seqio::stats::SampleStats;
use mrmc_simulate::environmental_samples;

fn main() {
    let args = HarnessArgs::parse(0.02);
    println!(
        "Table I — ENVIRONMENTAL DNA SAMPLES (generated at scale {})\n",
        args.scale
    );
    println!(
        "{:<6} {:<18} {:>8} {:>9} {:>6} {:>6} {:>8} {:>8} {:>7}",
        "SID", "Site", "La°N", "Lo°W", "Dep", "T", "Reads", "GenRead", "AvgLen"
    );
    for cfg in environmental_samples() {
        if !args.wants(cfg.sid) {
            continue;
        }
        let dataset = cfg.generate(args.scale, args.seed);
        let stats = SampleStats::from_records(&dataset.reads).expect("non-empty sample");
        println!(
            "{:<6} {:<18} {:>8.3} {:>9.3} {:>6} {:>6.1} {:>8} {:>8} {:>7.1}",
            cfg.sid,
            cfg.site,
            cfg.lat,
            cfg.lon,
            cfg.depth_m,
            cfg.temp_c,
            cfg.reads,
            dataset.len(),
            stats.lengths.mean,
        );
    }
    println!("\nReads = paper's full-size count; GenRead = generated at --scale; AvgLen ≈ 60 bp per the paper.");
}
