//! Regenerates **Figure 2** — runtime (minutes) of the hierarchical
//! pipeline vs. number of nodes (2–12) and input size (10³–10⁷ reads).
//!
//! Kernel costs are *measured* on this machine (a real scaled run),
//! then list-scheduled onto the virtual EMR cluster — the documented
//! substitution for the paper's testbed (DESIGN.md §2).
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin figure2
//! ```

use mrmc::{CostCalibration, MrMcConfig};
use mrmc_mapreduce::JobCostModel;

fn main() {
    let config = MrMcConfig::whole_metagenome();
    eprintln!("calibrating kernels on this machine...");
    let calibration = CostCalibration::measure(&config, 1000);
    eprintln!(
        "  sketch {:.1} µs/read, similarity {:.3} µs/pair",
        calibration.sketch_per_read * 1e6,
        calibration.sim_per_pair * 1e6
    );

    let model = JobCostModel::default();
    let nodes: Vec<usize> = (2..=12).step_by(2).collect();
    let read_counts = [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000];

    println!("Figure 2 — runtime (minutes) vs nodes and reads (simulated EMR cluster)\n");
    print!("{:>12}", "reads\\nodes");
    for n in &nodes {
        print!("{n:>10}");
    }
    println!();
    for reads in read_counts {
        print!("{reads:>12}");
        for &n in &nodes {
            let minutes = calibration.simulate(reads, n, &model) / 60.0;
            print!("{minutes:>10.2}");
        }
        println!();
    }

    // The two headline properties of the figure, checked numerically.
    let flat_small = {
        let t2 = calibration.simulate(1_000, 2, &model);
        let t12 = calibration.simulate(1_000, 12, &model);
        (t2 - t12).abs() / t2
    };
    let speedup_large =
        calibration.simulate(10_000_000, 2, &model) / calibration.simulate(10_000_000, 12, &model);
    println!(
        "\nchecks: 1k-read flatness (rel. spread) = {:.1}% (paper: flat);\n\
         10M-read speedup 2→12 nodes = {:.1}× (paper: keeps improving with nodes)",
        flat_small * 100.0,
        speedup_large
    );
}
