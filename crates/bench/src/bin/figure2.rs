//! Regenerates **Figure 2** — runtime (minutes) of the hierarchical
//! pipeline vs. number of nodes (2–12) and input size (10³–10⁷ reads).
//!
//! Kernel costs are *measured* on this machine (a real scaled run),
//! then list-scheduled onto the virtual EMR cluster — the documented
//! substitution for the paper's testbed (DESIGN.md §2).
//!
//! A second section re-runs the *real* (scaled) pipeline with
//! engine-injected stragglers and speculative execution enabled, then
//! re-schedules the measured tasks — including the recovery work the
//! engine actually performed — onto the same virtual cluster, showing
//! what Figure 2 looks like on a flaky cluster. The straggler run's
//! `engine.*` metrics snapshot prints alongside its counter dump.
//!
//! `--json <path>` emits the full grid machine-readably; `--trace
//! <path>` additionally writes a Chrome trace of the straggler run's
//! simulated 6-node schedule (open in `chrome://tracing` / Perfetto).
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin figure2
//! ```

use mrmc::{CostCalibration, Mode, MrMcConfig, MrMcMinH};
use mrmc_bench::json::{write_file, Json};
use mrmc_bench::HarnessArgs;
use mrmc_mapreduce::chaos::{FaultPlan, Phase};
use mrmc_mapreduce::{chrome_trace, ClusterSpec, JobCostModel, Tracer};
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

fn main() {
    let args = HarnessArgs::parse(1.0);
    let config = MrMcConfig::whole_metagenome();
    eprintln!("calibrating kernels on this machine...");
    let calibration = CostCalibration::measure(&config, 1000);
    eprintln!(
        "  sketch {:.1} µs/read, similarity {:.3} µs/pair",
        calibration.sketch_per_read * 1e6,
        calibration.sim_per_pair * 1e6
    );

    let model = JobCostModel::default();
    let nodes: Vec<usize> = (2..=12).step_by(2).collect();
    let read_counts = [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000];

    println!("Figure 2 — runtime (minutes) vs nodes and reads (simulated EMR cluster)\n");
    print!("{:>12}", "reads\\nodes");
    for n in &nodes {
        print!("{n:>10}");
    }
    println!();
    let mut grid = Vec::new();
    for reads in read_counts {
        print!("{reads:>12}");
        for &n in &nodes {
            let minutes = calibration.simulate(reads, n, &model) / 60.0;
            print!("{minutes:>10.2}");
            grid.push(Json::obj([
                ("reads", Json::from(reads)),
                ("nodes", n.into()),
                ("minutes", Json::fixed(minutes, 4)),
            ]));
        }
        println!();
    }

    // The two headline properties of the figure, checked numerically.
    let flat_small = {
        let t2 = calibration.simulate(1_000, 2, &model);
        let t12 = calibration.simulate(1_000, 12, &model);
        (t2 - t12).abs() / t2
    };
    let speedup_large =
        calibration.simulate(10_000_000, 2, &model) / calibration.simulate(10_000_000, 12, &model);
    println!(
        "\nchecks: 1k-read flatness (rel. spread) = {:.1}% (paper: flat);\n\
         10M-read speedup 2→12 nodes = {:.1}× (paper: keeps improving with nodes)",
        flat_small * 100.0,
        speedup_large
    );

    let banded = banded_section(&calibration, &nodes, &model, args.seed);
    let chaos = chaos_section(&nodes, &model, &args);

    if let Some(path) = &args.json {
        let doc = Json::obj([
            ("seed", Json::from(args.seed)),
            ("flat_small_rel_spread", Json::fixed(flat_small, 4)),
            ("speedup_10m_2_to_12", Json::fixed(speedup_large, 3)),
            ("grid", Json::Arr(grid)),
            ("banded", banded),
            ("chaos", chaos),
        ]);
        write_file(path, &doc);
        eprintln!("wrote Figure 2 grid to {path}");
    }
}

/// Figure 2 with banded-LSH candidate pruning: a real banded run at
/// feasible size measures the surviving-candidate density, then both
/// pipelines are re-scheduled at the paper's sizes.
fn banded_section(
    calibration: &CostCalibration,
    nodes: &[usize],
    model: &JobCostModel,
    seed: u64,
) -> Json {
    let config = MrMcConfig {
        theta: 0.95,
        mode: Mode::Greedy,
        map_tasks: 8,
        ..MrMcConfig::sixteen_s()
    }
    .banded();
    let mrmc::CandidateGen::Banded { bands, .. } = config.candidates else {
        unreachable!("banded() config");
    };
    let wire = config.wire;
    let reads = mrmc_simulate::huse_16s(0.03, 2_000.0 / 345_000.0, seed).reads;
    let run = MrMcMinH::new(config).run(&reads).expect("banded run");
    let candidates = run.pipeline.counter_total("CANDIDATES_EMITTED");
    let cand_per_read = candidates as f64 / reads.len() as f64;
    eprintln!(
        "\nbanded calibration: {} reads → {candidates} candidates \
         ({cand_per_read:.1}/read), {} pairs verified, {} B shuffled \
         across {} sorted runs ({:?} wire)",
        reads.len(),
        run.pipeline.counter_total("PAIRS_COMPUTED"),
        run.pipeline.counter_total("SHUFFLE_BYTES"),
        run.pipeline.counter_total("SHUFFLE_RUNS"),
        wire,
    );

    println!(
        "\nFigure 2 addendum — banded-LSH pruning ({bands} bands, \
         candidate density measured on a real run)\n"
    );
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>9}",
        "reads", "nodes", "dense (min)", "banded (min)", "speedup"
    );
    let mut rows = Vec::new();
    for reads_n in [100_000u64, 1_000_000, 10_000_000] {
        for &n in nodes {
            let dense = calibration.simulate(reads_n, n, model);
            let banded = calibration.simulate_banded(
                reads_n,
                bands,
                (reads_n as f64 * cand_per_read) as u64,
                n,
                model,
            );
            println!(
                "{:>12} {:>12} {:>14.2} {:>14.2} {:>8.1}x",
                reads_n,
                n,
                dense / 60.0,
                banded / 60.0,
                dense / banded
            );
            rows.push(Json::obj([
                ("reads", Json::from(reads_n)),
                ("nodes", n.into()),
                ("dense_minutes", Json::fixed(dense / 60.0, 4)),
                ("banded_minutes", Json::fixed(banded / 60.0, 4)),
                ("speedup", Json::fixed(dense / banded, 3)),
            ]));
        }
    }
    println!(
        "\ncheck: the banded pipeline turns the quadratic similarity job into\n\
         near-linear shuffle work; the dense column is the paper's Figure 2."
    );
    Json::Arr(rows)
}

/// Figure 2 on a flaky cluster: the real engine runs the hierarchical
/// pipeline twice at small scale — clean, then with injected
/// stragglers rescued by speculative execution — and both runs'
/// measured tasks (plus the engine's actual recovery work) are
/// re-scheduled onto the virtual cluster.
fn chaos_section(nodes: &[usize], model: &JobCostModel, args: &HarnessArgs) -> Json {
    let spec = CommunitySpec {
        species: vec![
            SpeciesSpec {
                name: "a".into(),
                gc: 0.40,
                abundance: 1.0,
            },
            SpeciesSpec {
                name: "b".into(),
                gc: 0.60,
                abundance: 1.0,
            },
        ],
        rank: TaxRank::Phylum,
        genome_len: 50_000,
    };
    let sim = ReadSimulator::new(800, ErrorModel::with_total_rate(0.002));
    let reads = spec.generate("f2", 120, &sim, args.seed).reads;

    let runner = MrMcMinH::new(MrMcConfig {
        kmer: 5,
        num_hashes: 64,
        theta: 0.55,
        mode: Mode::Hierarchical,
        map_tasks: 8,
        ..Default::default()
    });
    eprintln!("\nre-running the real pipeline with injected stragglers...");
    let clean = runner.run(&reads).expect("clean run");
    // One straggler per stage, slowed well past the speculation bar.
    let inj = FaultPlan::new()
        .task_slowdown(0, Phase::Map, 2, 40)
        .task_slowdown(1, Phase::Map, 5, 40)
        .injector();
    let chaotic = runner.run_with_injector(&reads, &inj).expect("chaotic run");
    assert_eq!(
        chaotic.assignment, clean.assignment,
        "stragglers must not change the clustering"
    );
    let rec = chaotic.recovery();

    println!(
        "\nFigure 2 addendum — same pipeline, engine-injected stragglers\n\
         (1 × 40 ms straggler per stage; speculation on; {} backup wins,\n\
         {} tasks' recovery work charged to the schedule)\n",
        rec.speculative_wins,
        rec.total_events()
    );
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "nodes", "clean (s)", "faulty (s)", "overhead"
    );
    let mut rows = Vec::new();
    for &n in nodes {
        let cluster = ClusterSpec::m1_large(n);
        let t_clean = clean.pipeline.simulated_total(&cluster, model);
        let t_faulty = chaotic.pipeline.simulated_total(&cluster, model);
        println!(
            "{:>12} {:>14.2} {:>14.2} {:>9.1}%",
            n,
            t_clean,
            t_faulty,
            (t_faulty / t_clean - 1.0) * 100.0
        );
        rows.push(Json::obj([
            ("nodes", Json::from(n)),
            ("clean_seconds", Json::fixed(t_clean, 4)),
            ("faulty_seconds", Json::fixed(t_faulty, 4)),
            ("overhead", Json::fixed(t_faulty / t_clean - 1.0, 4)),
        ]));
    }
    println!(
        "\ncounters (clean run): PAIRS_COMPUTED = {}, SHUFFLED_PAIRS = {}, \
         SHUFFLE_BYTES = {}, SHUFFLE_RUNS = {}",
        clean.pipeline.counter_total("PAIRS_COMPUTED"),
        clean.pipeline.counter_total("SHUFFLED_PAIRS"),
        clean.pipeline.counter_total("SHUFFLE_BYTES"),
        clean.pipeline.counter_total("SHUFFLE_RUNS"),
    );
    println!(
        "\ncheck: output bit-identical under stragglers; overhead shrinks as\n\
         nodes absorb the speculative re-work (recovery rides the same\n\
         list schedule as real tasks)."
    );

    // The same counters through the metrics plane: the straggler run's
    // pipeline exported as an `engine.*` snapshot (recovery events
    // included), printed alongside the raw counter dump and carried in
    // the `--json` artifact.
    let registry = mrmc_obs::MetricsRegistry::new();
    chaotic.pipeline.export_metrics(&registry);
    let snapshot = registry.snapshot();
    println!(
        "\nmetrics snapshot (straggler run):\n{}",
        snapshot.render_text()
    );

    // With `--trace`, dump the straggler run's simulated 6-node
    // schedule (the recovery work visible as Recovery-category spans).
    if let Some(path) = &args.trace {
        let tracer = Tracer::new();
        chaotic
            .pipeline
            .simulate_on_traced(&ClusterSpec::m1_large(6), model, &tracer);
        std::fs::write(path, chrome_trace(&tracer.ledger()))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote simulated 6-node Chrome trace of the straggler run to {path}");
    }
    Json::obj([("rows", Json::Arr(rows)), ("metrics", snapshot.to_json())])
}
