//! Ablation (DESIGN.md §4): sketch size `n` vs estimation error, for
//! the positional (Eq. 3) and set-based (Algorithm 1 line 9) Jaccard
//! estimators. Ground truth is the exact Jaccard of the k-mer sets.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin ablation_estimator
//! ```

use mrmc_minhash::{exact_jaccard, positional_similarity, set_similarity, MinHasher};
use mrmc_seqio::encode::kmer_set;
use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

fn main() {
    // Read pairs spanning the similarity range: same species (high J),
    // related (mid), unrelated (low).
    let spec = CommunitySpec {
        species: (0..4)
            .map(|i| SpeciesSpec {
                name: format!("sp{i}"),
                gc: 0.40 + 0.06 * i as f64,
                abundance: 1.0,
            })
            .collect(),
        rank: TaxRank::Genus,
        genome_len: 60_000,
    };
    let sim = ReadSimulator::new(1000, ErrorModel::with_total_rate(0.002));
    let dataset = spec.generate("ablate", 80, &sim, 11);
    let k = 5;
    let sets: Vec<Vec<u64>> = dataset
        .reads
        .iter()
        .map(|r| kmer_set(&r.seq, k).expect("valid k"))
        .collect();

    println!(
        "estimator error vs sketch size (k = {k}, {} read pairs)\n",
        80 * 79 / 2
    );
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>16}",
        "n", "positional RMSE", "pos. RMSE(Eq.5)", "pos. bias(Eq.5)", "set-based RMSE"
    );
    for n in [10usize, 25, 50, 100, 200, 400] {
        let hasher = MinHasher::for_kmer_size(k, n, 3);
        // The paper-literal Eq. 5 family hashes into m = 4^k = 1024 —
        // smaller than the ~600-element feature sets, so minima
        // collide and the estimator acquires a positive bias.
        let literal = MinHasher::with_family(
            k,
            mrmc_minhash::UniversalHashFamily::for_kmer_size_paper_literal(k, n, 3),
        );
        let sketch_all = |h: &MinHasher| -> Vec<_> {
            dataset
                .reads
                .iter()
                .map(|r| h.sketch_sequence(&r.seq).expect("valid k"))
                .collect()
        };
        let sketches = sketch_all(&hasher);
        let lit_sketches = sketch_all(&literal);
        let mut pos_se = 0.0f64;
        let mut lit_se = 0.0f64;
        let mut lit_bias = 0.0f64;
        let mut set_se = 0.0f64;
        let mut pairs = 0usize;
        for i in 0..sketches.len() {
            for j in (i + 1)..sketches.len() {
                let truth = exact_jaccard(&sets[i], &sets[j]);
                let p = positional_similarity(&sketches[i], &sketches[j]);
                let l = positional_similarity(&lit_sketches[i], &lit_sketches[j]);
                let s = set_similarity(&sketches[i], &sketches[j]);
                pos_se += (p - truth) * (p - truth);
                lit_se += (l - truth) * (l - truth);
                lit_bias += l - truth;
                set_se += (s - truth) * (s - truth);
                pairs += 1;
            }
        }
        println!(
            "{:>6} {:>16.4} {:>16.4} {:>+16.4} {:>16.4}",
            n,
            (pos_se / pairs as f64).sqrt(),
            (lit_se / pairs as f64).sqrt(),
            lit_bias / pairs as f64,
            (set_se / pairs as f64).sqrt(),
        );
    }
    println!(
        "\nExpected: the default positional estimator's RMSE shrinks ~1/sqrt(n) (unbiased MinHash);\n\
         the paper-literal Eq. 5 range (m = 4^k) plateaus at its min-collision bias; the set-based\n\
         form of Algorithm 1 line 9 carries its own bias. This is the DESIGN.md estimator ablation."
    );
}
