//! Ablation (DESIGN.md §4): the `$LINK` choice — single vs average vs
//! complete linkage — on cluster counts and quality for one Table II
//! sample across θ.
//!
//! ```sh
//! cargo run -p mrmc-bench --release --bin ablation_linkage [-- --scale 0.01 --samples S8]
//! ```

use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_bench::{fmt_acc, fmt_sim, print_row, HarnessArgs};
use mrmc_cluster::Linkage;
use mrmc_simulate::{whole_metagenome_samples, ErrorModel};

fn main() {
    let args = HarnessArgs::parse(0.01);
    let sid = args
        .samples
        .as_ref()
        .and_then(|s| s.first().cloned())
        .unwrap_or_else(|| "S8".to_string());
    let cfg = whole_metagenome_samples()
        .into_iter()
        .find(|s| s.sid == sid)
        .unwrap_or_else(|| panic!("unknown sample {sid}"));
    let dataset = cfg.generate(args.scale, ErrorModel::with_total_rate(0.002), args.seed);
    println!(
        "linkage ablation on {sid} ({} reads, {} species, {:?} separation)\n",
        dataset.len(),
        cfg.species.len(),
        cfg.rank
    );

    let widths = [10usize, 6, 9, 8, 8];
    print_row(
        &["linkage", "θ", "#Cluster", "W.Acc", "W.Sim"].map(str::to_string),
        &widths,
    );
    for theta in [0.45f64, 0.55, 0.65] {
        for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
            let config = MrMcConfig {
                theta,
                linkage,
                mode: Mode::Hierarchical,
                ..MrMcConfig::whole_metagenome()
            };
            let result = MrMcMinH::new(config).run(&dataset.reads).expect("run");
            print_row(
                &[
                    format!("{linkage:?}"),
                    format!("{theta}"),
                    result.num_clusters().to_string(),
                    fmt_acc(&result.assignment, &dataset, 2),
                    fmt_sim(&result.assignment, &dataset.reads, 60),
                ],
                &widths,
            );
        }
        println!();
    }
    println!(
        "Expected: single linkage chains (fewest clusters, lowest purity at loose θ);\n\
         complete splits most; average — the paper's middle ground — tracks the truth best."
    );
}
