//! Pairwise-similarity kernel throughput: the positional estimator
//! (Eq. 3) vs the set-based estimator (Algorithm 1 line 9) vs exact
//! Jaccard on the underlying k-mer sets, plus the before/after
//! comparison against the naive `reference` oracles (degeneracy
//! rescan; per-call filter/sort/dedup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrmc_minhash::{exact_jaccard, positional_similarity, reference, set_similarity, MinHasher};
use mrmc_seqio::encode::kmer_set;

fn synthetic_read(len: usize, salt: usize) -> Vec<u8> {
    (0..len)
        .map(|i| b"ACGT"[(i * 131 + salt * 7919 + i / 3) % 4])
        .collect()
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    let a = synthetic_read(1000, 1);
    let b = synthetic_read(1000, 2);

    for n in [50usize, 100, 200] {
        let hasher = MinHasher::for_kmer_size(5, n, 7);
        let sa = hasher.sketch_sequence(&a).unwrap();
        let sb = hasher.sketch_sequence(&b).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("positional", n), |bch| {
            bch.iter(|| positional_similarity(std::hint::black_box(&sa), std::hint::black_box(&sb)))
        });
        group.bench_function(BenchmarkId::new("set-based", n), |bch| {
            bch.iter(|| set_similarity(std::hint::black_box(&sa), std::hint::black_box(&sb)))
        });
    }

    // The quantity both approximate: exact Jaccard on full k-mer sets
    // (what MrMC-MinH avoids computing per pair).
    let ka = kmer_set(&a, 5).unwrap();
    let kb = kmer_set(&b, 5).unwrap();
    group.bench_function("exact-jaccard-k5-1000bp", |bch| {
        bch.iter(|| exact_jaccard(std::hint::black_box(&ka), std::hint::black_box(&kb)))
    });
    group.finish();
}

/// Before/after: optimized estimators (cached degeneracy counts,
/// allocation-free sorted-merge) against the naive oracles. Results
/// are asserted bit-identical on the benched pair before timing.
fn bench_reference_vs_optimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity-before-after");
    let a = synthetic_read(1000, 1);
    let b = synthetic_read(1000, 2);
    let n = 100usize; // the paper's whole-metagenome sketch size
    let hasher = MinHasher::for_kmer_size(5, n, 7);
    let sa = hasher.sketch_sequence(&a).unwrap();
    let sb = hasher.sketch_sequence(&b).unwrap();

    assert_eq!(
        positional_similarity(&sa, &sb).to_bits(),
        reference::positional_similarity(&sa, &sb).to_bits(),
        "positional estimators diverged"
    );
    assert_eq!(
        set_similarity(&sa, &sb).to_bits(),
        reference::set_similarity(&sa, &sb).to_bits(),
        "set estimators diverged"
    );

    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("positional-reference", n), |bch| {
        bch.iter(|| {
            reference::positional_similarity(std::hint::black_box(&sa), std::hint::black_box(&sb))
        })
    });
    group.bench_function(BenchmarkId::new("positional-optimized", n), |bch| {
        bch.iter(|| positional_similarity(std::hint::black_box(&sa), std::hint::black_box(&sb)))
    });
    group.bench_function(BenchmarkId::new("set-based-reference", n), |bch| {
        bch.iter(|| reference::set_similarity(std::hint::black_box(&sa), std::hint::black_box(&sb)))
    });
    group.bench_function(BenchmarkId::new("set-based-optimized", n), |bch| {
        bch.iter(|| set_similarity(std::hint::black_box(&sa), std::hint::black_box(&sb)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_similarity, bench_reference_vs_optimized
}
criterion_main!(benches);
