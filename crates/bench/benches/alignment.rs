//! Alignment kernels (the cost MrMC-MinH avoids): full Needleman–
//! Wunsch vs banded vs affine vs score-only, at 16S tag (60 bp) and
//! shotgun (1000 bp) lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrmc_align::global::global_score;
use mrmc_align::{banded_global, global_affine, global_align, Scoring};

fn synthetic_pair(len: usize) -> (Vec<u8>, Vec<u8>) {
    let a: Vec<u8> = (0..len).map(|i| b"ACGT"[(i * 7 + i / 5) % 4]).collect();
    let mut b = a.clone();
    // ~5% substitutions.
    for i in (0..len).step_by(20) {
        b[i] = b"ACGT"[(a[i] as usize + 1) % 4];
    }
    (a, b)
}

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("alignment");
    let scoring = Scoring::dna_default();
    let affine = Scoring::dna_affine();
    for len in [60usize, 1000] {
        let (a, b) = synthetic_pair(len);
        group.bench_function(BenchmarkId::new("nw-full", len), |bch| {
            bch.iter(|| global_align(std::hint::black_box(&a), std::hint::black_box(&b), &scoring))
        });
        group.bench_function(BenchmarkId::new("nw-score-only", len), |bch| {
            bch.iter(|| global_score(std::hint::black_box(&a), std::hint::black_box(&b), &scoring))
        });
        group.bench_function(BenchmarkId::new("banded-8", len), |bch| {
            bch.iter(|| {
                banded_global(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &scoring,
                    8,
                )
            })
        });
        group.bench_function(BenchmarkId::new("gotoh-affine", len), |bch| {
            bch.iter(|| global_affine(std::hint::black_box(&a), std::hint::black_box(&b), &affine))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_alignment
}
criterion_main!(benches);
