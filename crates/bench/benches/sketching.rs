//! Sketching throughput: the `CalculateMinwiseHash` kernel at the
//! paper's two operating points (k = 5/n = 100 whole-metagenome,
//! k = 15/n = 50 16S) and a sweep over sketch sizes, plus the
//! before/after comparison against the naive `reference` oracle
//! (per-(k-mer, i) double-`%` loop) the optimized kernel replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrmc_minhash::{reference, MinHasher};
use mrmc_seqio::encode::KmerIter;

fn synthetic_read(len: usize, salt: usize) -> Vec<u8> {
    (0..len)
        .map(|i| b"ACGT"[(i * 131 + salt * 7919 + i * i) % 4])
        .collect()
}

fn bench_sketching(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketching");
    for (k, n, read_len, label) in [
        (
            5usize,
            100usize,
            1000usize,
            "whole-metagenome(k5,n100,1000bp)",
        ),
        (15, 50, 60, "16S(k15,n50,60bp)"),
    ] {
        let hasher = MinHasher::for_kmer_size(k, n, 1);
        let read = synthetic_read(read_len, 3);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("paper-setting", label), |b| {
            b.iter(|| hasher.sketch_sequence(std::hint::black_box(&read)).unwrap())
        });
    }
    // Sketch-size sweep at fixed k: cost is linear in n.
    for n in [25usize, 50, 100, 200] {
        let hasher = MinHasher::for_kmer_size(5, n, 1);
        let read = synthetic_read(1000, 5);
        group.bench_function(BenchmarkId::new("num-hashes", n), |b| {
            b.iter(|| hasher.sketch_sequence(std::hint::black_box(&read)).unwrap())
        });
    }
    group.finish();
}

/// Before/after: the optimized kernel (Barrett reduction + blocked
/// family walk) against the naive oracle it replaced. The two must be
/// bit-identical — asserted here on the benched inputs before timing —
/// so the only difference measured is speed.
fn bench_reference_vs_optimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketching-before-after");
    for (k, n, read_len, label) in [
        (
            5usize,
            100usize,
            1000usize,
            "whole-metagenome(k5,n100,1000bp)",
        ),
        (15, 50, 60, "16S(k15,n50,60bp)"),
    ] {
        let hasher = MinHasher::for_kmer_size(k, n, 1);
        let read = synthetic_read(read_len, 3);

        let optimized = hasher.sketch_sequence(&read).unwrap();
        let naive = reference::sketch_kmers(&hasher, KmerIter::new(&read, k).unwrap());
        assert_eq!(optimized, naive, "kernels diverged at {label}");

        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("reference", label), |b| {
            b.iter(|| {
                let kmers = KmerIter::new(std::hint::black_box(&read[..]), k).unwrap();
                reference::sketch_kmers(&hasher, kmers)
            })
        });
        group.bench_function(BenchmarkId::new("optimized", label), |b| {
            b.iter(|| hasher.sketch_sequence(std::hint::black_box(&read)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sketching, bench_reference_vs_optimized
}
criterion_main!(benches);
