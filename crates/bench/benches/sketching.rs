//! Sketching throughput: the `CalculateMinwiseHash` kernel at the
//! paper's two operating points (k = 5/n = 100 whole-metagenome,
//! k = 15/n = 50 16S) and a sweep over sketch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrmc_minhash::MinHasher;

fn synthetic_read(len: usize, salt: usize) -> Vec<u8> {
    (0..len)
        .map(|i| b"ACGT"[(i * 131 + salt * 7919 + i * i) % 4])
        .collect()
}

fn bench_sketching(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketching");
    for (k, n, read_len, label) in [
        (5usize, 100usize, 1000usize, "whole-metagenome(k5,n100,1000bp)"),
        (15, 50, 60, "16S(k15,n50,60bp)"),
    ] {
        let hasher = MinHasher::for_kmer_size(k, n, 1);
        let read = synthetic_read(read_len, 3);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("paper-setting", label), |b| {
            b.iter(|| hasher.sketch_sequence(std::hint::black_box(&read)).unwrap())
        });
    }
    // Sketch-size sweep at fixed k: cost is linear in n.
    for n in [25usize, 50, 100, 200] {
        let hasher = MinHasher::for_kmer_size(5, n, 1);
        let read = synthetic_read(1000, 5);
        group.bench_function(BenchmarkId::new("num-hashes", n), |b| {
            b.iter(|| hasher.sketch_sequence(std::hint::black_box(&read)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sketching
}
criterion_main!(benches);
