//! Map-Reduce substrate benchmarks: end-to-end job throughput,
//! combiner on/off (the ablation DESIGN.md calls out), and worker
//! scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrmc_mapreduce::engine::{run_job, run_job_with_combiner};
use mrmc_mapreduce::job::{Combiner, JobConfig, Mapper, Reducer, TaskContext};

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: usize, line: String, ctx: &mut TaskContext<String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut TaskContext<String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

struct SumCombiner;
impl Combiner for SumCombiner {
    type Key = String;
    type Value = u64;
    fn combine(&self, _k: &String, vs: Vec<u64>) -> Vec<u64> {
        vec![vs.iter().sum()]
    }
}

fn corpus(lines: usize) -> Vec<(usize, String)> {
    // Zipf-ish vocabulary so the combiner has duplicates to collapse.
    (0..lines)
        .map(|i| {
            let words: Vec<String> = (0..12)
                .map(|j| format!("w{}", (i * 13 + j * j) % 50))
                .collect();
            (i, words.join(" "))
        })
        .collect()
}

fn bench_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce-wordcount");
    let input = corpus(4000);
    let cfg = JobConfig::named("wc").reducers(8);

    group.bench_function("no-combiner", |b| {
        b.iter(|| run_job(input.clone(), 16, &Tokenize, &Sum, &cfg).unwrap())
    });
    group.bench_function("with-combiner", |b| {
        b.iter(|| {
            run_job_with_combiner(input.clone(), 16, &Tokenize, &SumCombiner, &Sum, &cfg).unwrap()
        })
    });
    for workers in [1usize, 4] {
        let cfg = JobConfig::named("wc").reducers(8).workers(workers);
        group.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| run_job(input.clone(), 16, &Tokenize, &Sum, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shuffle
}
criterion_main!(benches);
