//! Hierarchical-clustering kernels: SLINK vs NN-chain, per linkage
//! policy, plus matrix construction (sequential vs row-parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrmc_cluster::{agglomerative, CondensedMatrix, Linkage};

fn synthetic_matrix(n: usize) -> CondensedMatrix {
    CondensedMatrix::build(n, |i, j| {
        let x = ((i * 2654435761 + j * 40503) % 1000) as f64 / 1000.0;
        0.2 + 0.6 * x
    })
}

fn bench_linkage(c: &mut Criterion) {
    let mut group = c.benchmark_group("linkage");
    for n in [200usize, 500] {
        let m = synthetic_matrix(n);
        for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
            group.bench_function(BenchmarkId::new(format!("{linkage:?}"), n), |b| {
                b.iter(|| agglomerative(std::hint::black_box(&m), linkage, 0.6))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("matrix-build");
    let sim = |i: usize, j: usize| ((i * 31 + j * 17) % 97) as f64 / 97.0;
    for n in [500usize, 1000] {
        group.bench_function(BenchmarkId::new("sequential", n), |b| {
            b.iter(|| CondensedMatrix::build(n, sim))
        });
        group.bench_function(BenchmarkId::new("row-parallel", n), |b| {
            b.iter(|| CondensedMatrix::build_parallel(n, sim))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_linkage
}
criterion_main!(benches);
