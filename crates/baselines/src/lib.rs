//! Reimplementations of the comparison algorithms in Tables III–V.
//!
//! Each baseline is a faithful "-like" implementation of the published
//! core strategy (we do not claim bug-for-bug parity with the original
//! binaries; DESIGN.md documents the substitution):
//!
//! | Paper's comparator | Module | Strategy |
//! |---|---|---|
//! | CD-HIT | [`cdhit_like`] | longest-first greedy centroids, short-word count filter, banded alignment identity |
//! | UCLUST | [`uclust_like`] | input-order greedy centroids, k-mer-ranked candidate centroids, banded alignment |
//! | ESPRIT | [`esprit_like`] | pairwise k-mer distance + complete-linkage hierarchical |
//! | DOTUR | [`dotur_like`] | full pairwise alignment distance matrix + hierarchical (furthest neighbour) |
//! | Mothur | [`dotur_like`] (average linkage preset) | same matrix, average neighbour — the paper's DOTUR/Mothur rows are near-identical |
//! | MC-LSH | [`mc_lsh`] | the authors' earlier LSH-banding greedy clusterer |
//! | MetaCluster | [`metacluster_like`] | 4-mer frequency vectors + Spearman distance, top-down split then bottom-up merge |
//!
//! All baselines implement the common [`Clusterer`] trait so the
//! experiment harness can sweep them uniformly.

pub mod cdhit_like;
pub mod dotur_like;
pub mod esprit_like;
pub mod mc_lsh;
pub mod metacluster_like;
pub mod uclust_like;

use mrmc_cluster::ClusterAssignment;
use mrmc_seqio::SeqRecord;

pub use cdhit_like::CdHitLike;
pub use dotur_like::{DoturLike, MothurLike};
pub use esprit_like::EspritLike;
pub use mc_lsh::McLsh;
pub use metacluster_like::MetaClusterLike;
pub use uclust_like::UclustLike;

/// A clustering algorithm over sequence reads.
pub trait Clusterer: Send + Sync {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Cluster the reads; `labels[i]` is read `i`'s cluster.
    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment;
}

#[cfg(test)]
pub(crate) mod testutil {
    use mrmc_seqio::SeqRecord;
    use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

    /// A small 3-species amplicon-style community: the "genome" is a
    /// single read-length locus so every read of one species covers the
    /// same span and aligns end-to-end — the regime the paper's
    /// alignment-based baselines are designed for (they are only
    /// evaluated on 16S amplicons).
    pub fn three_species(reads_per_species: usize, seed: u64) -> (Vec<SeqRecord>, Vec<usize>) {
        let spec = CommunitySpec {
            species: (0..3)
                .map(|i| SpeciesSpec {
                    name: format!("sp{i}"),
                    gc: 0.35 + 0.15 * i as f64,
                    abundance: 1.0,
                })
                .collect(),
            rank: TaxRank::Phylum,
            genome_len: 150,
        };
        let sim = ReadSimulator::new(150, ErrorModel::with_total_rate(0.005));
        let d = spec.generate("t", reads_per_species * 3, &sim, seed);
        let labels = d.labels.clone().expect("labeled");
        (d.reads, labels)
    }

    /// Fraction of read pairs on which `assignment` agrees with truth
    /// about same/different cluster (Rand index).
    pub fn rand_index(labels: &[usize], truth: &[usize]) -> f64 {
        let n = labels.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_a = labels[i] == labels[j];
                let same_t = truth[i] == truth[j];
                agree += usize::from(same_a == same_t);
                total += 1;
            }
        }
        agree as f64 / total as f64
    }
}
