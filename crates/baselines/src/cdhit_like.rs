//! CD-HIT-like greedy clustering (Li & Godzik 2006).
//!
//! The published strategy: sort sequences longest-first; each sequence
//! is compared against existing cluster *representatives*; a cheap
//! short-word (k-mer) counting filter rejects most candidates without
//! alignment (two sequences at identity ≥ θ must share at least
//! `L − k·⌊(1−θ)·L⌋` k-mers over their shorter length `L`); survivors
//! are verified with banded global alignment.

use std::collections::HashMap;

use mrmc_align::{banded_global, Scoring};
use mrmc_cluster::ClusterAssignment;
use mrmc_seqio::encode::kmer_set;
use mrmc_seqio::SeqRecord;

use crate::Clusterer;

/// CD-HIT-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdHitLike {
    /// Identity threshold θ (e.g. 0.95).
    pub theta: f64,
    /// Word size for the counting filter (CD-HIT uses 5 for DNA at
    /// high identity).
    pub word_size: usize,
    /// Alignment band half-width.
    pub band: usize,
}

impl Default for CdHitLike {
    fn default() -> Self {
        CdHitLike {
            theta: 0.95,
            word_size: 5,
            band: 8,
        }
    }
}

struct Representative {
    index: usize,
    kmers: Vec<u64>,
    len: usize,
}

impl CdHitLike {
    /// The word-count lower bound two sequences must share to possibly
    /// reach identity θ: each mismatch destroys at most `k` *distinct*
    /// words, so two sequences at identity ≥ θ share at least
    /// `distinct − k·⌊(1−θ)·L⌋` of the smaller set's distinct words.
    fn word_bound(&self, distinct_words: usize, shorter_len: usize) -> usize {
        let mismatches = ((1.0 - self.theta) * shorter_len as f64).floor() as usize;
        distinct_words.saturating_sub(self.word_size * mismatches)
    }
}

/// Count of shared distinct k-mers between two sorted sets.
fn shared_kmers(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

impl Clusterer for CdHitLike {
    fn name(&self) -> &'static str {
        "CD-HIT"
    }

    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment {
        let scoring = Scoring::dna_default();
        // Longest-first processing order (CD-HIT's defining rule: the
        // longest sequence seeds each cluster).
        let mut order: Vec<usize> = (0..reads.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(reads[i].len()));

        let mut labels = vec![0usize; reads.len()];
        let mut reps: Vec<Representative> = Vec::new();
        // Inverted word index rep-id lists, CD-HIT's other speed trick.
        let mut word_index: HashMap<u64, Vec<usize>> = HashMap::new();

        for &i in &order {
            let kmers = kmer_set(&reads[i].seq, self.word_size).unwrap_or_default();
            // Candidate representatives: those sharing any word.
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for km in &kmers {
                if let Some(rs) = word_index.get(km) {
                    for &r in rs {
                        *counts.entry(r).or_insert(0) += 1;
                    }
                }
            }
            let mut assigned = None;
            // Check candidates in decreasing shared-word order.
            let mut cands: Vec<(usize, usize)> = counts.into_iter().collect();
            cands.sort_by_key(|&(r, c)| (std::cmp::Reverse(c), r));
            for (r, rough_count) in cands {
                let rep = &reps[r];
                let shorter = rep.len.min(reads[i].len());
                let distinct = kmers.len().min(rep.kmers.len());
                let bound = self.word_bound(distinct, shorter);
                if rough_count < bound {
                    continue; // cannot reach θ — skip alignment
                }
                // Exact shared count (the rough count already equals it
                // for distinct k-mer sets, but keep the check explicit).
                if shared_kmers(&kmers, &rep.kmers) < bound {
                    continue;
                }
                let aln = banded_global(&reads[rep.index].seq, &reads[i].seq, &scoring, self.band);
                if aln.identity() >= self.theta {
                    assigned = Some(r);
                    break;
                }
            }
            match assigned {
                Some(r) => labels[i] = r,
                None => {
                    let r = reps.len();
                    for km in &kmers {
                        word_index.entry(*km).or_default().push(r);
                    }
                    reps.push(Representative {
                        index: i,
                        kmers,
                        len: reads[i].len(),
                    });
                    labels[i] = r;
                }
            }
        }
        ClusterAssignment::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rand_index, three_species};

    #[test]
    fn identical_reads_one_cluster() {
        let reads: Vec<SeqRecord> = (0..5)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTACGTACGTACGTACGT".to_vec()))
            .collect();
        let a = CdHitLike::default().cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn dissimilar_reads_separate() {
        let reads = vec![
            SeqRecord::new("a", b"AAAAAAAAAAAAAAAAAAAA".to_vec()),
            SeqRecord::new("b", b"CCCCCCCCCCCCCCCCCCCC".to_vec()),
            SeqRecord::new("c", b"GTGTGTGTGTGTGTGTGTGT".to_vec()),
        ];
        let a = CdHitLike::default().cluster(&reads);
        assert_eq!(a.num_clusters(), 3);
    }

    #[test]
    fn recovers_well_separated_species() {
        let (reads, truth) = three_species(20, 1);
        let a = CdHitLike {
            theta: 0.80,
            ..Default::default()
        }
        .cluster(&reads);
        let ri = rand_index(a.labels(), &truth);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn longest_sequence_is_representative() {
        // A long seed plus slightly-shorter copies: one cluster.
        let base = b"ACGTACGTACGTACGTACGTACGTACGTACGT".to_vec();
        let reads = vec![
            SeqRecord::new("short", base[..28].to_vec()),
            SeqRecord::new("long", base.clone()),
            SeqRecord::new("mid", base[..30].to_vec()),
        ];
        let a = CdHitLike {
            theta: 0.85,
            ..Default::default()
        }
        .cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn word_bound_sane() {
        let c = CdHitLike {
            theta: 0.95,
            word_size: 5,
            band: 4,
        };
        // 96 distinct words over 100 bp, 5 mismatches allowed →
        // bound = 96 − 25 = 71.
        assert_eq!(c.word_bound(96, 100), 71);
        // Repetitive sequence with few distinct words: bound floors at 0.
        assert_eq!(c.word_bound(4, 100), 0);
    }

    #[test]
    fn empty_input() {
        let a = CdHitLike::default().cluster(&[]);
        assert!(a.is_empty());
    }
}
