//! MetaCluster-like clustering (Yang et al. 2010).
//!
//! MetaCluster's published design (paper §II): represent reads by
//! **k-mer frequency vectors** (composition, not identity — reads of
//! one genome share codon/oligonucleotide usage even without overlap),
//! measure **Spearman distance**, and run a **two-phase** procedure:
//! top-down separation (recursively split incohesive groups) followed
//! by bottom-up merging of group medoids.

use rayon::prelude::*;

use mrmc_align::kmerdist::{rank_vector, spearman_from_ranks, KmerProfile};
use mrmc_cluster::ClusterAssignment;
use mrmc_seqio::encode::KmerIter;
use mrmc_seqio::SeqRecord;

use crate::Clusterer;

/// MetaCluster-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaClusterLike {
    /// Composition word size (MetaCluster uses 4-mers).
    pub kmer: usize,
    /// Split a group while its mean medoid distance exceeds this.
    pub split_threshold: f64,
    /// Merge two groups when their medoid distance is below this.
    pub merge_threshold: f64,
    /// Groups at or below this size are never split further.
    pub min_group: usize,
}

impl Default for MetaClusterLike {
    fn default() -> Self {
        MetaClusterLike {
            kmer: 4,
            split_threshold: 0.12,
            merge_threshold: 0.08,
            min_group: 8,
        }
    }
}

impl Clusterer for MetaClusterLike {
    fn name(&self) -> &'static str {
        "MetaCluster"
    }

    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment {
        if reads.is_empty() {
            return ClusterAssignment::from_labels(Vec::new());
        }
        // Precompute z-scored rank vectors once per read: every
        // Spearman evaluation then costs one dot product instead of
        // two O(4^k log 4^k) rankings.
        let ranks: Vec<Vec<f64>> = reads
            .par_iter()
            .map(|r| {
                let profile = KmerProfile::from_kmers(
                    self.kmer,
                    KmerIter::new(&r.seq, self.kmer)
                        .map(|it| it.collect::<Vec<_>>())
                        .unwrap_or_default(),
                );
                rank_vector(&profile)
            })
            .collect();
        let dist = |i: usize, j: usize| spearman_from_ranks(&ranks[i], &ranks[j]);

        // ---- Phase 1: top-down separation ----
        let mut groups: Vec<Vec<usize>> = vec![(0..reads.len()).collect()];
        let mut done: Vec<Vec<usize>> = Vec::new();
        while let Some(group) = groups.pop() {
            if group.len() <= self.min_group {
                done.push(group);
                continue;
            }
            let medoid = medoid_of(&group, &dist);
            let mean_d = group
                .iter()
                .filter(|&&m| m != medoid)
                .map(|&m| dist(medoid, m))
                .sum::<f64>()
                / (group.len() - 1) as f64;
            if mean_d <= self.split_threshold {
                done.push(group);
                continue;
            }
            // 2-medoid split: the group medoid and its furthest member
            // seed two halves; members go to the closer seed.
            let far = group
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    dist(medoid, a)
                        .partial_cmp(&dist(medoid, b))
                        .expect("no NaN")
                })
                .expect("non-empty group");
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &m in &group {
                if dist(medoid, m) <= dist(far, m) {
                    left.push(m);
                } else {
                    right.push(m);
                }
            }
            if left.is_empty() || right.is_empty() {
                done.push(group); // degenerate split — stop here
            } else {
                groups.push(left);
                groups.push(right);
            }
        }

        // ---- Phase 2: bottom-up merging of group medoids ----
        let medoids: Vec<usize> = done.iter().map(|g| medoid_of(g, &dist)).collect();
        let mut group_label: Vec<usize> = (0..done.len()).collect();
        // Union groups whose medoids are within the merge threshold
        // (transitively, single-linkage style, as MetaCluster's merge
        // phase does).
        for a in 0..done.len() {
            for b in (a + 1)..done.len() {
                if dist(medoids[a], medoids[b]) <= self.merge_threshold {
                    let (la, lb) = (group_label[a], group_label[b]);
                    if la != lb {
                        for l in group_label.iter_mut() {
                            if *l == lb {
                                *l = la;
                            }
                        }
                    }
                }
            }
        }

        let mut labels = vec![0usize; reads.len()];
        for (g, group) in done.iter().enumerate() {
            for &m in group {
                labels[m] = group_label[g];
            }
        }
        ClusterAssignment::from_labels(labels).compact()
    }
}

/// The member minimizing total distance to the rest.
fn medoid_of<F: Fn(usize, usize) -> f64>(group: &[usize], dist: &F) -> usize {
    assert!(!group.is_empty(), "medoid of empty group");
    if group.len() == 1 {
        return group[0];
    }
    *group
        .iter()
        .min_by(|&&a, &&b| {
            let da: f64 = group.iter().filter(|&&m| m != a).map(|&m| dist(a, m)).sum();
            let db: f64 = group.iter().filter(|&&m| m != b).map(|&m| dist(b, m)).sum();
            da.partial_cmp(&db).expect("no NaN")
        })
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rand_index, three_species};

    #[test]
    fn composition_separates_distant_genomes() {
        // Composition methods need longer reads; use the generator's
        // phylum-level species with GC spread 0.35→0.65.
        let (reads, truth) = three_species(15, 9);
        let a = MetaClusterLike::default().cluster(&reads);
        let ri = rand_index(a.labels(), &truth);
        assert!(ri > 0.7, "rand index {ri}");
    }

    #[test]
    fn identical_reads_one_cluster() {
        let reads: Vec<SeqRecord> = (0..6)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTTGCAACGGTACACGTTGCAACGGTACA".to_vec()))
            .collect();
        let a = MetaClusterLike::default().cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn min_group_stops_splitting() {
        let (reads, _) = three_species(2, 10); // 6 reads total
        let a = MetaClusterLike {
            min_group: 100,
            merge_threshold: 0.0,
            ..Default::default()
        }
        .cluster(&reads);
        // One group, never split.
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn merge_threshold_reunites_split_groups() {
        let (reads, _) = three_species(10, 11);
        let aggressive_split = MetaClusterLike {
            split_threshold: 0.0,
            min_group: 2,
            merge_threshold: 1.0, // merge everything back
            ..Default::default()
        };
        let a = aggressive_split.cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn medoid_of_singleton() {
        let d = |_: usize, _: usize| 0.0;
        assert_eq!(medoid_of(&[7], &d), 7);
    }

    #[test]
    fn empty_input() {
        assert!(MetaClusterLike::default().cluster(&[]).is_empty());
    }
}
