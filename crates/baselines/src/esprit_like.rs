//! ESPRIT-like clustering (Sun et al. 2009).
//!
//! ESPRIT's published pipeline: compute the **k-mer distance** for
//! every pair (avoiding "the expensive global alignment distance
//! calculation", paper §II), then hierarchically cluster with
//! complete linkage. Its heuristic pre-filter — skip pairs whose
//! k-mer distance already exceeds the radius — is reproduced by
//! clamping such distances to 1 (they can never co-cluster under
//! complete linkage at the cutoff anyway).

use rayon::prelude::*;

use mrmc_align::kmerdist::{kmer_distance, KmerProfile};
use mrmc_cluster::{agglomerative, ClusterAssignment, CondensedMatrix, Linkage};
use mrmc_seqio::encode::KmerIter;
use mrmc_seqio::SeqRecord;

use crate::Clusterer;

/// ESPRIT-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EspritLike {
    /// Similarity threshold θ (distance cutoff is `1 − θ`).
    pub theta: f64,
    /// Word size (ESPRIT uses k = 6 by default for 16S).
    pub kmer: usize,
    /// Pre-filter slack: pairs with k-mer distance above
    /// `(1 − θ) · filter_slack` are clamped to distance 1 without
    /// further consideration.
    pub filter_slack: f64,
}

impl Default for EspritLike {
    fn default() -> Self {
        EspritLike {
            theta: 0.95,
            kmer: 6,
            filter_slack: 4.0,
        }
    }
}

impl Clusterer for EspritLike {
    fn name(&self) -> &'static str {
        "ESPRIT"
    }

    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment {
        if reads.is_empty() {
            return ClusterAssignment::from_labels(Vec::new());
        }
        let profiles: Vec<KmerProfile> = reads
            .par_iter()
            .map(|r| {
                KmerProfile::from_kmers(
                    self.kmer,
                    KmerIter::new(&r.seq, self.kmer)
                        .map(|it| it.collect::<Vec<_>>())
                        .unwrap_or_default(),
                )
            })
            .collect();
        let radius = (1.0 - self.theta) * self.filter_slack;
        let matrix = CondensedMatrix::build_parallel(reads.len(), |i, j| {
            let d = kmer_distance(&profiles[i], &profiles[j]);
            // Heuristic pre-filter: hopeless pairs collapse to 1.
            let d = if d > radius { 1.0 } else { d };
            1.0 - d
        });
        let (assignment, _) = agglomerative(&matrix, Linkage::Complete, self.theta);
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rand_index, three_species};

    #[test]
    fn identical_reads_one_cluster() {
        let reads: Vec<SeqRecord> = (0..4)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTTGCAACGTTGCATTGG".to_vec()))
            .collect();
        let a = EspritLike::default().cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn recovers_well_separated_species() {
        let (reads, truth) = three_species(15, 3);
        let a = EspritLike {
            theta: 0.60,
            ..Default::default()
        }
        .cluster(&reads);
        let ri = rand_index(a.labels(), &truth);
        assert!(ri > 0.9, "rand index {ri}");
    }

    #[test]
    fn complete_linkage_overestimates_clusters_vs_loose_theta() {
        // The Table IV signature: ESPRIT produces many more clusters
        // than greedy methods at the same θ because complete linkage
        // requires *every* pair to clear it.
        let (reads, _) = three_species(15, 4);
        let strict = EspritLike {
            theta: 0.95,
            ..Default::default()
        }
        .cluster(&reads)
        .num_clusters();
        let loose = EspritLike {
            theta: 0.30,
            ..Default::default()
        }
        .cluster(&reads)
        .num_clusters();
        assert!(strict > loose, "strict {strict} loose {loose}");
    }

    #[test]
    fn empty_input() {
        assert!(EspritLike::default().cluster(&[]).is_empty());
    }
}
