//! MC-LSH: the authors' earlier LSH-based greedy clusterer
//! (Rasheed, Rangwala & Barbará 2012).
//!
//! Minhash sketches are split into `b` bands of `r` rows; sequences
//! colliding in any band bucket become cluster candidates (the classic
//! LSH banding scheme, tuned so the collision probability curve has
//! its S-bend near θ). A greedy pass then assigns each sequence to the
//! first candidate cluster whose representative verifies at sketch
//! similarity ≥ θ, else it starts a new cluster.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use mrmc_cluster::ClusterAssignment;
use mrmc_minhash::{positional_similarity, MinHasher, Sketch};
use mrmc_seqio::SeqRecord;

use crate::Clusterer;

/// MC-LSH configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McLsh {
    /// Similarity threshold θ.
    pub theta: f64,
    /// k-mer size.
    pub kmer: usize,
    /// Number of hash functions (sketch length) = `bands × rows`.
    pub bands: usize,
    /// Rows per band.
    pub rows: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for McLsh {
    fn default() -> Self {
        McLsh {
            theta: 0.95,
            kmer: 15,
            bands: 10,
            rows: 5,
            seed: 0x3c15,
        }
    }
}

impl McLsh {
    fn band_key(&self, sketch: &Sketch, band: usize) -> u64 {
        let mut h = DefaultHasher::new();
        band.hash(&mut h);
        let start = band * self.rows;
        sketch.values()[start..start + self.rows].hash(&mut h);
        h.finish()
    }
}

impl Clusterer for McLsh {
    fn name(&self) -> &'static str {
        "MC-LSH"
    }

    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment {
        let n_hashes = self.bands * self.rows;
        let hasher = MinHasher::for_kmer_size(self.kmer, n_hashes, self.seed);
        let sketches: Vec<Sketch> = reads
            .iter()
            .map(|r| hasher.sketch_sequence(&r.seq).expect("valid k"))
            .collect();

        // Buckets: (band, band hash) → cluster representatives seen.
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut labels = vec![0usize; reads.len()];
        let mut cluster_reps: Vec<usize> = Vec::new();

        for i in 0..reads.len() {
            // Collect candidate clusters from colliding bands.
            let mut candidates: Vec<usize> = Vec::new();
            for band in 0..self.bands {
                let key = self.band_key(&sketches[i], band);
                if let Some(cs) = buckets.get(&key) {
                    for &c in cs {
                        if !candidates.contains(&c) {
                            candidates.push(c);
                        }
                    }
                }
            }
            let mut assigned = None;
            for c in candidates {
                let rep = cluster_reps[c];
                if positional_similarity(&sketches[i], &sketches[rep]) >= self.theta {
                    assigned = Some(c);
                    break;
                }
            }
            match assigned {
                Some(c) => labels[i] = c,
                None => {
                    let c = cluster_reps.len();
                    cluster_reps.push(i);
                    labels[i] = c;
                    for band in 0..self.bands {
                        let key = self.band_key(&sketches[i], band);
                        buckets.entry(key).or_default().push(c);
                    }
                }
            }
        }
        ClusterAssignment::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rand_index, three_species};

    fn small() -> McLsh {
        McLsh {
            theta: 0.5,
            kmer: 6,
            bands: 8,
            rows: 4,
            seed: 7,
        }
    }

    #[test]
    fn identical_reads_one_cluster() {
        let reads: Vec<SeqRecord> = (0..5)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTTGCAACGTTGCAGGTTACAC".to_vec()))
            .collect();
        let a = small().cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn dissimilar_reads_separate() {
        let reads = vec![
            SeqRecord::new("a", b"AAAAAAAAAAAAAAAAAAAAAAAA".to_vec()),
            SeqRecord::new("b", b"CCCCCCCCCCCCCCCCCCCCCCCC".to_vec()),
        ];
        let a = small().cluster(&reads);
        assert_eq!(a.num_clusters(), 2);
    }

    #[test]
    fn recovers_well_separated_species() {
        let (reads, truth) = three_species(20, 8);
        let a = McLsh {
            theta: 0.3,
            kmer: 8,
            bands: 16,
            rows: 2,
            seed: 3,
        }
        .cluster(&reads);
        let ri = rand_index(a.labels(), &truth);
        assert!(ri > 0.9, "rand index {ri}");
    }

    #[test]
    fn banding_never_misses_identical_sketches() {
        // Identical sequences collide in every band, so they always
        // become candidates of each other.
        let reads: Vec<SeqRecord> = (0..3)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTACGTACGTACGTTTGG".to_vec()))
            .collect();
        let a = McLsh {
            theta: 1.0,
            ..small()
        }
        .cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(small().cluster(&[]).is_empty());
    }
}
