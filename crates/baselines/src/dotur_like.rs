//! DOTUR-like and Mothur-like clustering (Schloss et al. 2005, 2009).
//!
//! Both tools consume a **full pairwise alignment distance matrix**
//! and perform hierarchical clustering — the quality gold standard
//! and the cost disaster the paper's Table V dramatizes (DOTUR/Mothur
//! take 10³–10⁴ s where MrMC-MinH takes seconds, and both had to be
//! fed *trimmed* FS312/FS396 samples). DOTUR's classic default is
//! furthest neighbour (complete linkage); Mothur's `cluster` command
//! default is average neighbour. Everything else is shared.

use mrmc_align::{global_align, Scoring};
use mrmc_cluster::{agglomerative, ClusterAssignment, CondensedMatrix, Linkage};
use mrmc_seqio::SeqRecord;

use crate::Clusterer;

/// DOTUR-like: full alignment matrix + furthest-neighbour clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoturLike {
    /// Similarity threshold θ.
    pub theta: f64,
}

impl Default for DoturLike {
    fn default() -> Self {
        DoturLike { theta: 0.95 }
    }
}

/// Mothur-like: full alignment matrix + average-neighbour clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MothurLike {
    /// Similarity threshold θ.
    pub theta: f64,
}

impl Default for MothurLike {
    fn default() -> Self {
        MothurLike { theta: 0.95 }
    }
}

/// The shared expensive part: all-pairs global alignment identity.
fn alignment_matrix(reads: &[SeqRecord]) -> CondensedMatrix {
    let scoring = Scoring::dna_default();
    CondensedMatrix::build_parallel(reads.len(), |i, j| {
        global_align(&reads[i].seq, &reads[j].seq, &scoring).identity()
    })
}

impl Clusterer for DoturLike {
    fn name(&self) -> &'static str {
        "DOTUR"
    }

    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment {
        if reads.is_empty() {
            return ClusterAssignment::from_labels(Vec::new());
        }
        let matrix = alignment_matrix(reads);
        agglomerative(&matrix, Linkage::Complete, self.theta).0
    }
}

impl Clusterer for MothurLike {
    fn name(&self) -> &'static str {
        "Mothur"
    }

    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment {
        if reads.is_empty() {
            return ClusterAssignment::from_labels(Vec::new());
        }
        let matrix = alignment_matrix(reads);
        agglomerative(&matrix, Linkage::Average, self.theta).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rand_index, three_species};

    #[test]
    fn identical_reads_one_cluster() {
        let reads: Vec<SeqRecord> = (0..4)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTTGCAACGTTGCA".to_vec()))
            .collect();
        assert_eq!(DoturLike::default().cluster(&reads).num_clusters(), 1);
        assert_eq!(MothurLike::default().cluster(&reads).num_clusters(), 1);
    }

    #[test]
    fn both_recover_well_separated_species() {
        let (reads, truth) = three_species(10, 5);
        for (name, a) in [
            ("dotur", DoturLike { theta: 0.75 }.cluster(&reads)),
            ("mothur", MothurLike { theta: 0.75 }.cluster(&reads)),
        ] {
            let ri = rand_index(a.labels(), &truth);
            assert!(ri > 0.9, "{name} rand index {ri}");
        }
    }

    #[test]
    fn mothur_never_more_clusters_than_dotur() {
        // Average linkage merges at least as eagerly as complete.
        let (reads, _) = three_species(8, 6);
        for theta in [0.5, 0.7, 0.9] {
            let d = DoturLike { theta }.cluster(&reads).num_clusters();
            let m = MothurLike { theta }.cluster(&reads).num_clusters();
            assert!(m <= d, "θ={theta}: mothur {m} > dotur {d}");
        }
    }

    #[test]
    fn dotur_guarantees_within_cluster_identity() {
        // Complete linkage at θ: all within-cluster pairs ≥ θ.
        let (reads, _) = three_species(6, 7);
        let theta = 0.8;
        let a = DoturLike { theta }.cluster(&reads);
        let scoring = Scoring::dna_default();
        for i in 0..reads.len() {
            for j in (i + 1)..reads.len() {
                if a.label(i) == a.label(j) {
                    let id = global_align(&reads[i].seq, &reads[j].seq, &scoring).identity();
                    assert!(id >= theta - 1e-9, "pair ({i},{j}) identity {id}");
                }
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(DoturLike::default().cluster(&[]).is_empty());
        assert!(MothurLike::default().cluster(&[]).is_empty());
    }
}
