//! UCLUST-like greedy clustering (Edgar 2010).
//!
//! Differences from CD-HIT that we reproduce: sequences are processed
//! in *input order* (UCLUST exploits that amplicon files are often
//! abundance-sorted), and instead of checking every centroid that
//! shares a word, only the **top-T centroids ranked by shared word
//! count** are alignment-verified ("USEARCH examines the top hits
//! first"); if none verifies, the query becomes a new centroid.

use std::collections::HashMap;

use mrmc_align::{banded_global, Scoring};
use mrmc_cluster::ClusterAssignment;
use mrmc_seqio::encode::kmer_set;
use mrmc_seqio::SeqRecord;

use crate::Clusterer;

/// UCLUST-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UclustLike {
    /// Identity threshold θ.
    pub theta: f64,
    /// Word size for candidate ranking.
    pub word_size: usize,
    /// Max candidate centroids verified per query (USEARCH's
    /// `maxaccepts`-ish knob).
    pub max_candidates: usize,
    /// Alignment band half-width.
    pub band: usize,
}

impl Default for UclustLike {
    fn default() -> Self {
        UclustLike {
            theta: 0.95,
            word_size: 5,
            max_candidates: 8,
            band: 8,
        }
    }
}

impl Clusterer for UclustLike {
    fn name(&self) -> &'static str {
        "UCLUST"
    }

    fn cluster(&self, reads: &[SeqRecord]) -> ClusterAssignment {
        let scoring = Scoring::dna_default();
        let mut labels = vec![0usize; reads.len()];
        let mut centroid_reads: Vec<usize> = Vec::new();
        let mut word_index: HashMap<u64, Vec<usize>> = HashMap::new();

        for (i, read) in reads.iter().enumerate() {
            let kmers = kmer_set(&read.seq, self.word_size).unwrap_or_default();
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for km in &kmers {
                if let Some(cs) = word_index.get(km) {
                    for &c in cs {
                        *counts.entry(c).or_insert(0) += 1;
                    }
                }
            }
            let mut cands: Vec<(usize, usize)> = counts.into_iter().collect();
            cands.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
            cands.truncate(self.max_candidates);

            let mut assigned = None;
            for (c, _) in cands {
                let aln = banded_global(
                    &reads[centroid_reads[c]].seq,
                    &read.seq,
                    &scoring,
                    self.band,
                );
                if aln.identity() >= self.theta {
                    assigned = Some(c);
                    break;
                }
            }
            match assigned {
                Some(c) => labels[i] = c,
                None => {
                    let c = centroid_reads.len();
                    for km in &kmers {
                        word_index.entry(*km).or_default().push(c);
                    }
                    centroid_reads.push(i);
                    labels[i] = c;
                }
            }
        }
        ClusterAssignment::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rand_index, three_species};

    #[test]
    fn identical_reads_one_cluster() {
        let reads: Vec<SeqRecord> = (0..4)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTTGCAACGTTGCA".to_vec()))
            .collect();
        let a = UclustLike::default().cluster(&reads);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn first_sequence_seeds_first_cluster() {
        // Input order matters: label of read 0 is 0.
        let reads = vec![
            SeqRecord::new("a", b"AAAAAAAAAAAAAAA".to_vec()),
            SeqRecord::new("b", b"CCCCCCCCCCCCCCC".to_vec()),
        ];
        let a = UclustLike::default().cluster(&reads);
        assert_eq!(a.label(0), 0);
        assert_eq!(a.label(1), 1);
    }

    #[test]
    fn recovers_well_separated_species() {
        let (reads, truth) = three_species(20, 2);
        let a = UclustLike {
            theta: 0.80,
            ..Default::default()
        }
        .cluster(&reads);
        let ri = rand_index(a.labels(), &truth);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn max_candidates_limits_verification() {
        // With max_candidates = 0, every read becomes its own centroid.
        let reads: Vec<SeqRecord> = (0..5)
            .map(|i| SeqRecord::new(format!("r{i}"), b"ACGTACGTACGTACGT".to_vec()))
            .collect();
        let a = UclustLike {
            max_candidates: 0,
            ..Default::default()
        }
        .cluster(&reads);
        assert_eq!(a.num_clusters(), 5);
    }

    #[test]
    fn empty_input() {
        assert!(UclustLike::default().cluster(&[]).is_empty());
    }
}
