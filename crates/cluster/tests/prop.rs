//! Property-based tests for the clustering substrate.

use proptest::prelude::*;

use mrmc_cluster::{
    agglomerative, cut_dendrogram, cut_levels, greedy_cluster, linkage::build_dendrogram,
    ClusterAssignment, CondensedMatrix, Linkage,
};

/// Strategy: a random symmetric similarity oracle over n items, as a
/// seeded deterministic function.
fn sim_fn(seed: u64) -> impl Fn(usize, usize) -> f64 + Copy {
    move |i: usize, j: usize| {
        let (i, j) = (i.min(j) as u64, i.max(j) as u64);
        let mut h =
            seed ^ (i.wrapping_mul(0x9E3779B97F4A7C15)) ^ (j.wrapping_mul(0xC2B2AE3D27D4EB4F));
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        (h % 1000) as f64 / 1000.0
    }
}

proptest! {
    /// Greedy assigns every item exactly one in-range label.
    #[test]
    fn greedy_total_assignment(n in 0usize..60, theta in 0.0f64..1.0, seed in any::<u64>()) {
        let a = greedy_cluster(n, theta, sim_fn(seed));
        prop_assert_eq!(a.len(), n);
        for i in 0..n {
            prop_assert!(a.label(i) < n.max(1));
        }
        let sizes: usize = a.sizes().iter().sum();
        prop_assert_eq!(sizes, n);
    }

    /// Greedy extremes: θ = 0 lumps everything into the first seed's
    /// cluster; θ above every similarity yields all singletons.
    /// (Interior θ is *not* monotone for greedy — it is order-dependent,
    /// which is exactly why the paper's hierarchical variant exists.)
    #[test]
    fn greedy_extremes(n in 1usize..50, seed in any::<u64>()) {
        let f = sim_fn(seed);
        prop_assert_eq!(greedy_cluster(n, 0.0, f).num_clusters(), 1);
        // sim_fn yields values < 1.0, so θ = 1.0 isolates everything.
        prop_assert_eq!(greedy_cluster(n, 1.0, f).num_clusters(), n);
    }

    /// Every greedy member clears θ against its cluster's seed (the
    /// Algorithm 1 line-9 guarantee). Seeds are the lowest-indexed
    /// member of their cluster.
    #[test]
    fn greedy_members_clear_theta_vs_seed(n in 1usize..40, theta in 0.1f64..0.9, seed in any::<u64>()) {
        let f = sim_fn(seed);
        let a = greedy_cluster(n, theta, f);
        let members = a.members();
        for cluster in members.values() {
            let seed_item = *cluster.iter().min().unwrap();
            for &m in cluster {
                if m != seed_item {
                    prop_assert!(f(seed_item, m) >= theta);
                }
            }
        }
    }

    /// A connected dendrogram has exactly n−1 merges and cutting it at
    /// θ = 0 gives one cluster, θ > max-similarity gives singletons.
    #[test]
    fn dendrogram_structure(n in 2usize..40, seed in any::<u64>(), linkage_idx in 0usize..3) {
        let linkage = [Linkage::Single, Linkage::Average, Linkage::Complete][linkage_idx];
        let m = CondensedMatrix::build(n, sim_fn(seed));
        let d = build_dendrogram(&m, linkage);
        prop_assert_eq!(d.merges.len(), n - 1);
        prop_assert_eq!(cut_dendrogram(&d, 0.0).num_clusters(), 1);
        prop_assert_eq!(cut_dendrogram(&d, 1.01).num_clusters(), n);
    }

    /// Cutting is monotone in θ for every linkage.
    #[test]
    fn cut_monotone_in_theta(n in 2usize..35, seed in any::<u64>(), linkage_idx in 0usize..3) {
        let linkage = [Linkage::Single, Linkage::Average, Linkage::Complete][linkage_idx];
        let m = CondensedMatrix::build(n, sim_fn(seed));
        let d = build_dendrogram(&m, linkage);
        let mut prev = 0usize;
        for theta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let c = cut_dendrogram(&d, theta).num_clusters();
            prop_assert!(c >= prev, "θ={theta}: {c} < {prev}");
            prev = c;
        }
    }

    /// Single linkage at θ equals the connected components of the
    /// θ-threshold similarity graph — the defining invariant.
    #[test]
    fn single_linkage_is_connected_components(n in 2usize..30, seed in any::<u64>(), theta in 0.1f64..0.9) {
        let f = sim_fn(seed);
        let m = CondensedMatrix::build(n, f);
        let (assign, _) = agglomerative(&m, Linkage::Single, theta);
        // Reference components by union-find over threshold edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x { p[x] = p[p[x]]; x = p[x]; }
            x
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if f(i, j) >= theta {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj { parent[ri] = rj; }
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let same_cc = find(&mut parent, i) == find(&mut parent, j);
                prop_assert_eq!(assign.label(i) == assign.label(j), same_cc, "pair ({}, {})", i, j);
            }
        }
    }

    /// Complete linkage guarantee: every within-cluster pair clears θ
    /// ("no pair of sequences within a cluster have less than θ
    /// percent similarity" — paper §III-B2). Consequently complete
    /// never yields fewer clusters than single.
    #[test]
    fn complete_linkage_clique_guarantee(n in 2usize..30, seed in any::<u64>(), theta in 0.1f64..0.9) {
        let f = sim_fn(seed);
        let m = CondensedMatrix::build(n, f);
        let (complete, _) = agglomerative(&m, Linkage::Complete, theta);
        for i in 0..n {
            for j in (i + 1)..n {
                if complete.label(i) == complete.label(j) {
                    prop_assert!(f(i, j) >= theta - 1e-9);
                }
            }
        }
        let (single, _) = agglomerative(&m, Linkage::Single, theta);
        prop_assert!(single.num_clusters() <= complete.num_clusters());
    }

    /// Merge heights are monotone non-increasing for every linkage
    /// (monotone linkages have no inversions).
    #[test]
    fn heights_monotone(n in 2usize..35, seed in any::<u64>(), linkage_idx in 0usize..3) {
        let linkage = [Linkage::Single, Linkage::Average, Linkage::Complete][linkage_idx];
        let m = CondensedMatrix::build(n, sim_fn(seed));
        let d = build_dendrogram(&m, linkage);
        let h = d.heights();
        for w in h.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "{h:?}");
        }
    }

    /// The condensed matrix stores what was built, symmetrically.
    #[test]
    fn matrix_symmetric_storage(n in 2usize..40, seed in any::<u64>()) {
        let f = sim_fn(seed);
        let m = CondensedMatrix::build_parallel(n, f);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!((m.get(i, j) - f(i, j)).abs() < 1e-6);
                    prop_assert_eq!(m.get(i, j), m.get(j, i));
                }
            }
        }
    }

    /// Multi-level cuts from one dendrogram form a taxonomy: a cut at
    /// higher θ *refines* the cut at lower θ (every fine cluster lies
    /// wholly inside one coarse cluster).
    #[test]
    fn cut_levels_nested_refinement(n in 2usize..30, seed in any::<u64>(), linkage_idx in 0usize..3) {
        let linkage = [Linkage::Single, Linkage::Average, Linkage::Complete][linkage_idx];
        let m = CondensedMatrix::build(n, sim_fn(seed));
        let d = build_dendrogram(&m, linkage);
        let levels = cut_levels(&d, &[0.9, 0.6, 0.3]); // fine → coarse
        for w in levels.windows(2) {
            let (fine, coarse) = (&w[0], &w[1]);
            // Same fine cluster → same coarse cluster.
            for i in 0..n {
                for j in (i + 1)..n {
                    if fine.label(i) == fine.label(j) {
                        prop_assert_eq!(coarse.label(i), coarse.label(j));
                    }
                }
            }
            prop_assert!(coarse.num_clusters() <= fine.num_clusters());
        }
    }

    /// compact() preserves the partition structure.
    #[test]
    fn compact_preserves_partition(labels in proptest::collection::vec(0usize..20, 1..50)) {
        let a = ClusterAssignment::from_labels(labels.clone());
        let c = a.compact();
        prop_assert_eq!(a.num_clusters(), c.num_clusters());
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                prop_assert_eq!(
                    a.label(i) == a.label(j),
                    c.label(i) == c.label(j)
                );
            }
        }
    }
}
