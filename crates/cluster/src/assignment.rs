//! Cluster label vectors.

use std::collections::HashMap;

/// A flat clustering: `labels[i]` is the cluster id of item `i`.
/// Ids are compact (`0..num_clusters`) after [`Self::compact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterAssignment {
    labels: Vec<usize>,
}

impl ClusterAssignment {
    /// Wrap raw labels.
    pub fn from_labels(labels: Vec<usize>) -> ClusterAssignment {
        ClusterAssignment { labels }
    }

    /// The trivial clustering: every item its own cluster.
    pub fn singletons(n: usize) -> ClusterAssignment {
        ClusterAssignment {
            labels: (0..n).collect(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of one item.
    pub fn label(&self, item: usize) -> usize {
        self.labels[item]
    }

    /// Raw labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of distinct clusters.
    pub fn num_clusters(&self) -> usize {
        let mut seen: Vec<usize> = self.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Renumber labels to `0..num_clusters` in first-appearance order.
    pub fn compact(&self) -> ClusterAssignment {
        let mut map: HashMap<usize, usize> = HashMap::new();
        let mut next = 0usize;
        let labels = self
            .labels
            .iter()
            .map(|&l| {
                *map.entry(l).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        ClusterAssignment { labels }
    }

    /// Members of each cluster, keyed by label.
    pub fn members(&self) -> HashMap<usize, Vec<usize>> {
        let mut m: HashMap<usize, Vec<usize>> = HashMap::new();
        for (item, &label) in self.labels.iter().enumerate() {
            m.entry(label).or_default().push(item);
        }
        m
    }

    /// Cluster sizes, largest first.
    pub fn sizes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.members().values().map(|m| m.len()).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Number of clusters with at least `min_size` members — the
    /// paper's "# Cluster" reporting applies such a floor ("clusters
    /// having number of sequences greater than 50").
    pub fn num_clusters_at_least(&self, min_size: usize) -> usize {
        self.members()
            .values()
            .filter(|m| m.len() >= min_size)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let a = ClusterAssignment::from_labels(vec![5, 5, 9, 5]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.num_clusters(), 2);
        assert_eq!(a.label(2), 9);
        assert_eq!(a.sizes(), vec![3, 1]);
    }

    #[test]
    fn compact_renumbers_in_first_appearance_order() {
        let a = ClusterAssignment::from_labels(vec![7, 7, 2, 7, 2, 40]).compact();
        assert_eq!(a.labels(), &[0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn singletons() {
        let a = ClusterAssignment::singletons(3);
        assert_eq!(a.num_clusters(), 3);
        assert_eq!(a.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn members_and_min_size_filter() {
        let a = ClusterAssignment::from_labels(vec![0, 0, 0, 1, 1, 2]);
        let m = a.members();
        assert_eq!(m[&0], vec![0, 1, 2]);
        assert_eq!(a.num_clusters_at_least(2), 2);
        assert_eq!(a.num_clusters_at_least(3), 1);
        assert_eq!(a.num_clusters_at_least(1), 3);
    }

    #[test]
    fn empty() {
        let a = ClusterAssignment::from_labels(vec![]);
        assert!(a.is_empty());
        assert_eq!(a.num_clusters(), 0);
    }
}
