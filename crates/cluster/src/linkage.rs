//! Agglomerative hierarchical clustering — the paper's Algorithm 2.
//!
//! The dendrogram is "a series of merge steps for the rows of the
//! similarity matrix, where each row is initially assigned to its own
//! cluster"; the similarity threshold θ decides the cutoff level
//! (paper §III-B2). Linkage policies: single, average, complete.
//!
//! Algorithms: **SLINK** (Sibson 1973) for single linkage — O(N²)
//! time, O(N) working memory — and the **nearest-neighbour chain**
//! algorithm with Lance–Williams updates for complete and average
//! linkage. Both produce the same dendrogram a naive O(N³)
//! agglomeration would (NN-chain requires reducible linkages, which
//! all three are).

use crate::assignment::ClusterAssignment;
use crate::matrix::CondensedMatrix;

/// Linkage policy (the Pig parameter `$LINK`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Nearest member distance.
    Single,
    /// Furthest member distance.
    Complete,
    /// Unweighted average member distance (UPGMA).
    Average,
}

impl std::str::FromStr for Linkage {
    type Err = String;
    fn from_str(s: &str) -> Result<Linkage, String> {
        match s.to_ascii_lowercase().as_str() {
            "single" => Ok(Linkage::Single),
            "complete" => Ok(Linkage::Complete),
            "average" => Ok(Linkage::Average),
            other => Err(format!("unknown linkage {other:?}")),
        }
    }
}

/// One dendrogram merge: the clusters containing items `a` and `b`
/// fuse at similarity level `similarity`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// An item in the first cluster.
    pub a: usize,
    /// An item in the second cluster.
    pub b: usize,
    /// Similarity (1 − linkage distance) of the merge.
    pub similarity: f64,
}

/// The full merge history, sorted by decreasing similarity
/// (increasing linkage distance) — the bottom-up merge order.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// `n − 1` merges (fewer if the matrix had infinite distances —
    /// never the case for similarity inputs in `[0, 1]`).
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Merge similarities, in merge order.
    pub fn heights(&self) -> Vec<f64> {
        self.merges.iter().map(|m| m.similarity).collect()
    }

    /// Serialize to Newick format (the standard tree-exchange format
    /// of phylogenetics tooling), with branch lengths derived from
    /// merge distances (`1 − similarity`). `names[i]` labels leaf `i`;
    /// pass fewer names than leaves and the rest fall back to their
    /// index. Disconnected forests (possible only for dendrograms
    /// built from partial merge lists) serialize each tree joined
    /// under a zero-length root.
    pub fn to_newick(&self, names: &[&str]) -> String {
        // Rebuild the tree bottom-up with a union-find whose
        // representative carries the current Newick fragment and the
        // height (distance from leaves) of that subtree's root.
        let mut parent: Vec<usize> = (0..self.n).collect();
        let mut fragment: Vec<Option<(String, f64)>> = (0..self.n)
            .map(|i| {
                let label = names
                    .get(i)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("leaf{i}"));
                Some((label, 0.0))
            })
            .collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        // Apply merges from most similar (lowest) to least similar so
        // subtree heights grow monotonically.
        let mut merges = self.merges.clone();
        merges.sort_by(|a, b| b.similarity.partial_cmp(&a.similarity).expect("no NaN"));
        for m in &merges {
            let (ra, rb) = (find(&mut parent, m.a), find(&mut parent, m.b));
            if ra == rb {
                continue;
            }
            let (fa, ha) = fragment[ra].take().expect("live root");
            let (fb, hb) = fragment[rb].take().expect("live root");
            let height = 1.0 - m.similarity;
            // Branch lengths from the children's roots up to this node.
            let node = format!(
                "({}:{:.6},{}:{:.6})",
                fa,
                (height - ha).max(0.0),
                fb,
                (height - hb).max(0.0)
            );
            parent[rb] = ra;
            fragment[ra] = Some((node, height));
        }

        // Collect remaining roots (1 for a full dendrogram).
        let mut roots: Vec<(String, f64)> = Vec::new();
        #[allow(clippy::needless_range_loop)] // i is both index and UF element
        for i in 0..self.n {
            if find(&mut parent, i) == i {
                if let Some(frag) = fragment[i].take() {
                    roots.push(frag);
                }
            }
        }
        match roots.len() {
            0 => ";".to_string(),
            1 => format!("{};", roots[0].0),
            _ => {
                let parts: Vec<String> =
                    roots.into_iter().map(|(f, _)| format!("{f}:0.0")).collect();
                format!("({});", parts.join(","))
            }
        }
    }
}

/// Build the dendrogram for a *similarity* matrix under a linkage.
pub fn build_dendrogram(matrix: &CondensedMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    if n <= 1 {
        return Dendrogram {
            n,
            merges: Vec::new(),
        };
    }
    let mut merges = match linkage {
        Linkage::Single => slink(matrix),
        Linkage::Complete | Linkage::Average => nn_chain(matrix, linkage),
    };
    // Bottom-up order: most similar first.
    merges.sort_by(|x, y| y.similarity.partial_cmp(&x.similarity).expect("no NaN"));
    Dendrogram { n, merges }
}

/// Cut a dendrogram at similarity threshold `theta`: apply every merge
/// with `similarity ≥ theta`; remaining components are the clusters.
pub fn cut_dendrogram(dendrogram: &Dendrogram, theta: f64) -> ClusterAssignment {
    let mut uf = UnionFind::new(dendrogram.n);
    for m in &dendrogram.merges {
        if m.similarity >= theta {
            uf.union(m.a, m.b);
        }
    }
    let labels = (0..dendrogram.n).map(|i| uf.find(i)).collect();
    ClusterAssignment::from_labels(labels).compact()
}

/// Cut one dendrogram at several thresholds at once — the paper's
/// "clustering results at different hierarchical taxonomic levels are
/// also produced by setting similarity threshold within a cluster".
/// Returns one assignment per θ, in the given order. Because all cuts
/// come from the same merge tree, the θ₁ ≥ θ₂ cut is always a
/// *refinement* of the θ₂ cut (each fine cluster lies inside one
/// coarse cluster) — the property that makes the levels a taxonomy.
pub fn cut_levels(dendrogram: &Dendrogram, thetas: &[f64]) -> Vec<ClusterAssignment> {
    thetas
        .iter()
        .map(|&t| cut_dendrogram(dendrogram, t))
        .collect()
}

/// Algorithm 2 in one call: build + cut.
pub fn agglomerative(
    matrix: &CondensedMatrix,
    linkage: Linkage,
    theta: f64,
) -> (ClusterAssignment, Dendrogram) {
    let dendro = build_dendrogram(matrix, linkage);
    let assignment = cut_dendrogram(&dendro, theta);
    (assignment, dendro)
}

/// SLINK: pointer-representation single-linkage in O(N²)/O(N).
/// Distances are `1 − similarity`.
// Index-based loops mirror Sibson's published pseudocode; iterator
// forms obscure the pointer-machine updates.
#[allow(clippy::needless_range_loop)]
fn slink(matrix: &CondensedMatrix) -> Vec<Merge> {
    let n = matrix.len();
    let mut pi = vec![0usize; n];
    let mut lambda = vec![f64::INFINITY; n];
    let mut m = vec![0f64; n];

    for i in 0..n {
        pi[i] = i;
        lambda[i] = f64::INFINITY;
        for j in 0..i {
            m[j] = 1.0 - matrix.get(i, j);
        }
        for j in 0..i {
            if lambda[j] >= m[j] {
                let t = m[pi[j]];
                m[pi[j]] = t.min(lambda[j]);
                lambda[j] = m[j];
                pi[j] = i;
            } else {
                let t = m[pi[j]];
                m[pi[j]] = t.min(m[j]);
            }
        }
        for j in 0..i {
            if lambda[j] >= lambda[pi[j]] {
                pi[j] = i;
            }
        }
    }

    (0..n)
        .filter(|&j| pi[j] != j)
        .map(|j| Merge {
            a: j,
            b: pi[j],
            similarity: 1.0 - lambda[j],
        })
        .collect()
}

/// Nearest-neighbour chain with Lance–Williams updates, on a mutable
/// condensed *distance* copy. O(N²) time, O(N²) memory.
#[allow(clippy::needless_range_loop)] // scans skip inactive clusters by index
fn nn_chain(matrix: &CondensedMatrix, linkage: Linkage) -> Vec<Merge> {
    let n = matrix.len();
    // Distance copy.
    let mut dist = CondensedMatrix::build(n, |i, j| 1.0 - matrix.get(i, j));
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    // Representative item of each live cluster id (min item works for
    // reporting merges).
    let mut merges = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        if chain.is_empty() {
            let start = (0..n).find(|&c| active[c]).expect("remaining > 1");
            chain.push(start);
        }
        loop {
            let a = *chain.last().expect("chain nonempty");
            // Nearest active neighbour of a (smallest index on ties).
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for c in 0..n {
                if c != a && active[c] {
                    let d = dist.get(a, c);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
            }
            // Reciprocal pair check: prefer the chain predecessor on
            // equal distance (guarantees termination).
            if chain.len() >= 2 {
                let prev = chain[chain.len() - 2];
                if best == prev || dist.get(a, prev) <= best_d {
                    // Merge a and prev.
                    chain.pop();
                    chain.pop();
                    let d_ab = dist.get(a, prev);
                    let (keep, drop) = (a.min(prev), a.max(prev));
                    merges.push(Merge {
                        a: keep,
                        b: drop,
                        similarity: 1.0 - d_ab,
                    });
                    // Lance–Williams update of keep = a ∪ prev.
                    for c in 0..n {
                        if c != keep && c != drop && active[c] {
                            let dk = dist.get(c, keep);
                            let dd = dist.get(c, drop);
                            let updated = match linkage {
                                Linkage::Single => dk.min(dd),
                                Linkage::Complete => dk.max(dd),
                                Linkage::Average => {
                                    let (sk, sd) = (size[keep] as f64, size[drop] as f64);
                                    (sk * dk + sd * dd) / (sk + sd)
                                }
                            };
                            dist.set(c, keep, updated);
                        }
                    }
                    size[keep] += size[drop];
                    active[drop] = false;
                    remaining -= 1;
                    break;
                }
            }
            chain.push(best);
        }
    }
    merges
}

/// Path-compressed, union-by-size union-find.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blocks {0,1,2} and {3,4} with weak cross links.
    fn two_blocks() -> CondensedMatrix {
        CondensedMatrix::build(5, |i, j| {
            let block = |x: usize| usize::from(x >= 3);
            if block(i) == block(j) {
                0.9
            } else {
                0.1
            }
        })
    }

    #[test]
    fn all_linkages_recover_blocks() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let (assign, dendro) = agglomerative(&two_blocks(), linkage, 0.5);
            assert_eq!(assign.num_clusters(), 2, "{linkage:?}");
            assert_eq!(dendro.merges.len(), 4, "{linkage:?}");
            assert_eq!(assign.label(0), assign.label(1));
            assert_eq!(assign.label(0), assign.label(2));
            assert_eq!(assign.label(3), assign.label(4));
            assert_ne!(assign.label(0), assign.label(3));
        }
    }

    #[test]
    fn cut_at_one_gives_singletons_unless_identical() {
        let m = CondensedMatrix::build(4, |_, _| 0.99);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let (assign, _) = agglomerative(&m, linkage, 1.0);
            assert_eq!(assign.num_clusters(), 4);
            let (assign, _) = agglomerative(&m, linkage, 0.9);
            assert_eq!(assign.num_clusters(), 1);
        }
    }

    #[test]
    fn merge_heights_monotone_nonincreasing() {
        // After sorting, similarities must be non-increasing; monotone
        // linkages have no inversions so sorting is faithful.
        let m = CondensedMatrix::build(8, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = build_dendrogram(&m, linkage);
            let h = d.heights();
            for w in h.windows(2) {
                assert!(w[0] >= w[1] - 1e-9, "{linkage:?}: {h:?}");
            }
            assert_eq!(d.merges.len(), 7);
        }
    }

    #[test]
    fn single_linkage_chains_complete_does_not() {
        // Path graph: consecutive items similar (0.8), others dissimilar.
        let m = CondensedMatrix::build(5, |i, j| if i.abs_diff(j) == 1 { 0.8 } else { 0.0 });
        // Single linkage at θ=0.7 chains everything into one cluster.
        let (single, _) = agglomerative(&m, Linkage::Single, 0.7);
        assert_eq!(single.num_clusters(), 1);
        // Complete linkage requires *all* pairs ≥ θ: no 5-chain cluster.
        let (complete, _) = agglomerative(&m, Linkage::Complete, 0.7);
        assert!(complete.num_clusters() > 1);
    }

    #[test]
    fn average_between_single_and_complete() {
        let m = CondensedMatrix::build(6, |i, j| {
            let x = ((i * 7 + j * 13) % 10) as f64 / 10.0;
            0.3 + x * 0.5
        });
        for theta in [0.4, 0.55, 0.7] {
            let ns = agglomerative(&m, Linkage::Single, theta).0.num_clusters();
            let na = agglomerative(&m, Linkage::Average, theta).0.num_clusters();
            let nc = agglomerative(&m, Linkage::Complete, theta).0.num_clusters();
            assert!(ns <= na && na <= nc, "θ={theta}: {ns} {na} {nc}");
        }
    }

    #[test]
    fn slink_matches_nn_chain_single() {
        let m = CondensedMatrix::build(10, |i, j| ((i * 31 + j * 17) % 89) as f64 / 89.0);
        let s = build_dendrogram(&m, Linkage::Single);
        let via_chain = {
            let mut merges = nn_chain(&m, Linkage::Single);
            merges.sort_by(|x, y| y.similarity.partial_cmp(&x.similarity).unwrap());
            merges
        };
        // Same merge heights (the trees may differ in representatives).
        let hs: Vec<f64> = s.heights();
        let hc: Vec<f64> = via_chain.iter().map(|m| m.similarity).collect();
        for (a, b) in hs.iter().zip(&hc) {
            assert!((a - b).abs() < 1e-9, "{hs:?} vs {hc:?}");
        }
        // And identical flat clusterings at several thresholds.
        for theta in [0.2, 0.5, 0.8] {
            let ca = cut_dendrogram(&s, theta);
            let cb = cut_dendrogram(
                &Dendrogram {
                    n: m.len(),
                    merges: via_chain.clone(),
                },
                theta,
            );
            assert_eq!(ca.num_clusters(), cb.num_clusters(), "θ={theta}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        let m = CondensedMatrix::build(0, |_, _| 0.0);
        let d = build_dendrogram(&m, Linkage::Average);
        assert!(d.merges.is_empty());
        let m = CondensedMatrix::build(1, |_, _| 0.0);
        let (a, d) = agglomerative(&m, Linkage::Complete, 0.5);
        assert_eq!(a.num_clusters(), 1);
        assert!(d.merges.is_empty());
    }

    #[test]
    fn newick_structure() {
        let (_, dendro) = agglomerative(&two_blocks(), Linkage::Average, 0.5);
        let newick = dendro.to_newick(&["a", "b", "c", "d", "e"]);
        // Well-formed: ends with ';', balanced parens, all leaves named.
        assert!(newick.ends_with(';'), "{newick}");
        let opens = newick.matches('(').count();
        let closes = newick.matches(')').count();
        assert_eq!(opens, closes, "{newick}");
        assert_eq!(opens, 4, "4 merges → 4 internal nodes: {newick}");
        for leaf in ["a", "b", "c", "d", "e"] {
            assert!(newick.contains(leaf), "{newick}");
        }
        // The two blocks merge internally (short branches ~0.1) before
        // the cross merge (long branch ~0.9): the root join carries the
        // bigger distance.
        assert!(newick.contains("0.8"), "{newick}");
    }

    #[test]
    fn newick_degenerate_sizes() {
        let d = Dendrogram {
            n: 0,
            merges: Vec::new(),
        };
        assert_eq!(d.to_newick(&[]), ";");
        let d = Dendrogram {
            n: 1,
            merges: Vec::new(),
        };
        assert_eq!(d.to_newick(&["only"]), "only;");
        // Two disconnected leaves (no merges): forest under a root.
        let d = Dendrogram {
            n: 2,
            merges: Vec::new(),
        };
        let s = d.to_newick(&[]);
        assert!(s.contains("leaf0") && s.contains("leaf1"), "{s}");
    }

    #[test]
    fn newick_default_names() {
        let m = CondensedMatrix::build(3, |_, _| 0.9);
        let d = build_dendrogram(&m, Linkage::Single);
        let s = d.to_newick(&["x"]); // only one name given
        assert!(
            s.contains('x') && s.contains("leaf1") && s.contains("leaf2"),
            "{s}"
        );
    }

    #[test]
    fn linkage_from_str() {
        assert_eq!("single".parse::<Linkage>().unwrap(), Linkage::Single);
        assert_eq!("AVERAGE".parse::<Linkage>().unwrap(), Linkage::Average);
        assert_eq!("Complete".parse::<Linkage>().unwrap(), Linkage::Complete);
        assert!("ward".parse::<Linkage>().is_err());
    }

    #[test]
    fn cluster_invariant_no_pair_below_theta_complete() {
        // Complete linkage guarantee from the paper: "no pair of
        // sequences within a cluster have less than θ similarity".
        let m = CondensedMatrix::build(12, |i, j| ((i * 13 + j * 29) % 50) as f64 / 50.0);
        let theta = 0.5;
        let (assign, _) = agglomerative(&m, Linkage::Complete, theta);
        for i in 0..12 {
            for j in (i + 1)..12 {
                if assign.label(i) == assign.label(j) {
                    assert!(
                        m.get(i, j) >= theta - 1e-9,
                        "pair ({i},{j}) sim {} in same cluster",
                        m.get(i, j)
                    );
                }
            }
        }
    }
}
