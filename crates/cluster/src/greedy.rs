//! Greedy incremental clustering — the paper's Algorithm 1.
//!
//! Repeat until every item is assigned: pick the first unassigned item
//! as a new cluster's representative, then sweep all remaining
//! unassigned items, absorbing those whose similarity to the
//! representative is ≥ θ. Each comparison is against the cluster
//! *representative* (the seed), not against all members — that is what
//! makes the algorithm fast and order-dependent, exactly like the
//! paper (and like CD-HIT/UCLUST's centroid rule).

use crate::assignment::ClusterAssignment;

/// Cluster `n` items with threshold `theta` using a similarity oracle
/// `sim(i, j) ∈ [0, 1]`. Items are seeded in index order (the paper:
/// "choosing the first sequence (or any one in the set)").
///
/// Complexity: O(n · c) similarity evaluations where `c` is the number
/// of clusters produced.
pub fn greedy_cluster<F>(n: usize, theta: f64, mut sim: F) -> ClusterAssignment
where
    F: FnMut(usize, usize) -> f64,
{
    const UNASSIGNED: usize = usize::MAX;
    let mut labels = vec![UNASSIGNED; n];
    let mut next_label = 0usize;
    let mut unassigned: Vec<usize> = (0..n).collect();

    while let Some(&seed) = unassigned.first() {
        labels[seed] = next_label;
        // Sweep the remaining unassigned items (Algorithm 1 lines 8–14),
        // keeping the ones that do not join for the next round.
        let mut rest = Vec::with_capacity(unassigned.len().saturating_sub(1));
        for &j in unassigned.iter().skip(1) {
            if sim(seed, j) >= theta {
                labels[j] = next_label;
            } else {
                rest.push(j);
            }
        }
        unassigned = rest;
        next_label += 1;
    }
    ClusterAssignment::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block-diagonal similarity: items share a cluster iff same block.
    fn block_sim(blocks: &[usize]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |i, j| {
            if blocks[i] == blocks[j] {
                0.9
            } else {
                0.1
            }
        }
    }

    #[test]
    fn recovers_blocks() {
        let blocks = [0, 0, 1, 1, 0, 2];
        let a = greedy_cluster(6, 0.5, block_sim(&blocks)).compact();
        assert_eq!(a.labels(), &[0, 0, 1, 1, 0, 2]);
    }

    #[test]
    fn theta_one_requires_identity() {
        // sim < 1 everywhere except self: all singletons.
        let a = greedy_cluster(4, 1.0, |i, j| if i == j { 1.0 } else { 0.99 });
        assert_eq!(a.num_clusters(), 4);
    }

    #[test]
    fn theta_zero_lumps_everything() {
        let a = greedy_cluster(5, 0.0, |_, _| 0.0);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn lower_theta_fewer_clusters_on_this_oracle() {
        // Regression characterization on a fixed oracle. (Greedy is
        // order-dependent, so θ-monotonicity is NOT a general theorem;
        // it happens to hold for this similarity function.)
        let sim = |i: usize, j: usize| {
            let x = (i * 31 + j * 17) % 100;
            x as f64 / 100.0
        };
        let mut prev = usize::MAX;
        for theta in [0.9, 0.6, 0.3, 0.0] {
            let c = greedy_cluster(20, theta, sim).num_clusters();
            assert!(c <= prev, "theta {theta}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(greedy_cluster(0, 0.5, |_, _| 0.0).len(), 0);
        let a = greedy_cluster(1, 0.5, |_, _| 0.0);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn comparisons_are_against_seed_only() {
        // Chain a-b similar, b-c similar, a-c dissimilar: greedy seeded
        // at a puts b with a, c alone (no transitive closure).
        let sim = |i: usize, j: usize| {
            let (i, j) = (i.min(j), i.max(j));
            match (i, j) {
                (0, 1) | (1, 2) => 0.9,
                _ => 0.1,
            }
        };
        let a = greedy_cluster(3, 0.5, sim).compact();
        assert_eq!(a.labels(), &[0, 0, 1]);
    }

    #[test]
    fn every_item_assigned() {
        let a = greedy_cluster(50, 0.7, |i, j| if i % 5 == j % 5 { 0.8 } else { 0.2 });
        assert!(a.labels().iter().all(|&l| l != usize::MAX));
        assert_eq!(a.num_clusters(), 5);
    }
}
