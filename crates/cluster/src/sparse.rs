//! Sparse similarity graphs (CSR adjacency).
//!
//! The banded-LSH candidate pipeline emits only the pairs whose
//! verified similarity reaches θ — a near-linear edge set instead of
//! the O(n²) condensed matrix. [`SparseSimGraph`] stores those edges
//! in compressed sparse rows; every absent pair reads as similarity
//! 0.0, which is exactly the single-linkage-at-θ semantics the banded
//! pipeline promises: edges at or above θ are exact, everything below
//! θ is indistinguishable from "no edge" for a θ-cut.

use crate::assignment::ClusterAssignment;
use crate::greedy::greedy_cluster;
use crate::linkage::{agglomerative, Dendrogram, Linkage};
use crate::matrix::CondensedMatrix;

/// An undirected similarity graph over `n` items, CSR layout, missing
/// edges read as 0.0.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSimGraph {
    n: usize,
    /// Row offsets into `neighbors`/`sims`, length `n + 1`.
    offsets: Vec<usize>,
    /// Column indices, sorted within each row.
    neighbors: Vec<u32>,
    /// Edge similarities, parallel to `neighbors`.
    sims: Vec<f32>,
}

impl SparseSimGraph {
    /// Build from undirected edges `(i, j, sim)`. Self-loops are
    /// dropped; duplicate pairs keep their first similarity. Panics if
    /// an endpoint is ≥ `n`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32, f32)>,
    ) -> SparseSimGraph {
        // Each undirected edge appears in both endpoints' rows.
        let mut directed: Vec<(u32, u32, f32)> = Vec::new();
        for (i, j, s) in edges {
            assert!(
                (i as usize) < n && (j as usize) < n,
                "edge ({i}, {j}) out of bounds for {n} items"
            );
            if i == j {
                continue;
            }
            directed.push((i, j, s));
            directed.push((j, i, s));
        }
        directed.sort_unstable_by_key(|&(i, j, _)| (i, j));
        directed.dedup_by_key(|&mut (i, j, _)| (i, j));

        let mut offsets = vec![0usize; n + 1];
        for &(i, _, _) in &directed {
            offsets[i as usize + 1] += 1;
        }
        for r in 0..n {
            offsets[r + 1] += offsets[r];
        }
        let mut neighbors = Vec::with_capacity(directed.len());
        let mut sims = Vec::with_capacity(directed.len());
        for (_, j, s) in directed {
            neighbors.push(j);
            sims.push(s);
        }
        SparseSimGraph {
            n,
            offsets,
            neighbors,
            sims,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the 0-item graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Edge density relative to the full `n·(n−1)/2` pair set.
    pub fn density(&self) -> f64 {
        let pairs = self.n * self.n.saturating_sub(1) / 2;
        if pairs == 0 {
            0.0
        } else {
            self.num_edges() as f64 / pairs as f64
        }
    }

    /// Similarity of `(i, j)`: the stored edge value, 0.0 when absent,
    /// 1.0 on the diagonal. Panics out of bounds.
    #[inline]
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 1.0;
        }
        let row = &self.neighbors[self.offsets[i]..self.offsets[i + 1]];
        match row.binary_search(&(j as u32)) {
            Ok(k) => f64::from(self.sims[self.offsets[i] + k]),
            Err(_) => 0.0,
        }
    }

    /// Neighbours of `i` with their similarities, ascending by index.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.offsets[i]..self.offsets[i + 1];
        self.neighbors[range.clone()]
            .iter()
            .zip(&self.sims[range])
            .map(|(&j, &s)| (j as usize, f64::from(s)))
    }

    /// Every undirected edge `(i, j, sim)` with `i < j`, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.n).flat_map(move |i| {
            let range = self.offsets[i]..self.offsets[i + 1];
            self.neighbors[range.clone()]
                .iter()
                .zip(&self.sims[range])
                .filter(move |(&j, _)| (i as u32) < j)
                .map(move |(&j, &s)| (i as u32, j, s))
        })
    }

    /// Materialize the condensed matrix this graph represents, with
    /// 0.0 for every missing pair. O(n²/2) memory — only for the
    /// hierarchical path, whose dendrogram construction is O(n²)
    /// anyway; the greedy path never calls this.
    pub fn to_condensed(&self) -> CondensedMatrix {
        let mut m = CondensedMatrix::build(self.n, |_, _| 0.0);
        for (i, j, s) in self.edges() {
            m.set(i as usize, j as usize, f64::from(s));
        }
        m
    }
}

/// Algorithm 1 over a sparse graph: identical to the dense run
/// whenever the graph holds every pair at or above θ (the banded
/// pipeline's exactness contract), because greedy only ever tests
/// `sim ≥ θ` and missing edges read 0.0 < θ.
pub fn greedy_cluster_sparse(graph: &SparseSimGraph, theta: f64) -> ClusterAssignment {
    greedy_cluster(graph.len(), theta, |i, j| graph.sim(i, j))
}

/// Algorithm 2 over a sparse graph: builds the dendrogram on the
/// zero-filled matrix (missing pairs = 0.0 similarity). Cuts at or
/// above θ match the dense run on corpora whose clusters are
/// θ-separated; merges *below* θ use 0 for pruned pairs, so the
/// sub-θ portion of the dendrogram follows single-linkage-at-θ
/// semantics rather than the dense averages.
pub fn agglomerative_sparse(
    graph: &SparseSimGraph,
    linkage: Linkage,
    theta: f64,
) -> (ClusterAssignment, Dendrogram) {
    agglomerative(&graph.to_condensed(), linkage, theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SparseSimGraph {
        // 0–1 strong, 1–2 strong, 2–3 weak, 3–0 absent.
        SparseSimGraph::from_edges(4, vec![(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.3)])
    }

    #[test]
    fn csr_lookup_and_symmetry() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.sim(0, 1), f64::from(0.9f32));
        assert_eq!(g.sim(1, 0), f64::from(0.9f32));
        assert_eq!(g.sim(0, 3), 0.0);
        assert_eq!(g.sim(2, 2), 1.0);
        let n1: Vec<usize> = g.neighbors(1).map(|(j, _)| j).collect();
        assert_eq!(n1, vec![0, 2]);
    }

    #[test]
    fn duplicate_and_self_edges_handled() {
        let g =
            SparseSimGraph::from_edges(3, vec![(0, 1, 0.5), (1, 0, 0.7), (0, 1, 0.9), (2, 2, 1.0)]);
        assert_eq!(g.num_edges(), 1);
        // First occurrence wins, in both directions.
        assert_eq!(g.sim(0, 1), f64::from(0.5f32));
        assert_eq!(g.sim(1, 0), f64::from(0.5f32));
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.3)]);
        let rebuilt = SparseSimGraph::from_edges(4, edges);
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn to_condensed_zero_fills() {
        let g = diamond();
        let m = g.to_condensed();
        assert_eq!(m.get(0, 1), f64::from(0.9f32));
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn greedy_sparse_matches_dense_oracle_above_theta() {
        let g = diamond();
        let sparse = greedy_cluster_sparse(&g, 0.75).compact();
        let dense = greedy_cluster(4, 0.75, |i, j| g.sim(i, j)).compact();
        assert_eq!(sparse, dense);
        assert_eq!(sparse.labels(), &[0, 0, 1, 2]);
    }

    #[test]
    fn agglomerative_sparse_cuts_at_theta() {
        let g = diamond();
        let (a, dendro) = agglomerative_sparse(&g, Linkage::Single, 0.75);
        assert_eq!(a.compact().labels(), &[0, 0, 0, 1]);
        assert_eq!(dendro.merges.len(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        let g = SparseSimGraph::from_edges(0, vec![]);
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
        let g = SparseSimGraph::from_edges(1, vec![]);
        assert_eq!(g.len(), 1);
        assert_eq!(greedy_cluster_sparse(&g, 0.5).num_clusters(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_edge_rejected() {
        SparseSimGraph::from_edges(2, vec![(0, 2, 0.5)]);
    }
}
