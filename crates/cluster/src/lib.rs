//! Clustering substrate: the paper's Algorithm 1 (greedy) and
//! Algorithm 2 (agglomerative hierarchical).
//!
//! * [`assignment`] — cluster label vectors and summaries;
//! * [`greedy`] — the step-wise incremental clustering of Algorithm 1:
//!   pick an unassigned seed, sweep every remaining item into its
//!   cluster when similarity ≥ θ, repeat;
//! * [`matrix`] — condensed (upper-triangle) all-pairs similarity
//!   matrices, built in parallel by row partitioning (paper Fig. 1);
//! * [`linkage`] — dendrogram construction: SLINK for single linkage
//!   (O(N²) time, O(N) memory) and the nearest-neighbour chain
//!   algorithm with Lance–Williams updates for complete and average
//!   linkage; θ-cutoff extraction of flat clusters.
//!
//! All algorithms are generic over a similarity oracle so they work
//! identically on minhash sketches, alignment identities, or k-mer
//! distances (the baselines reuse them).

pub mod assignment;
pub mod greedy;
pub mod linkage;
pub mod matrix;
pub mod sparse;

pub use assignment::ClusterAssignment;
pub use greedy::greedy_cluster;
pub use linkage::{agglomerative, cut_dendrogram, cut_levels, Dendrogram, Linkage, Merge};
pub use matrix::CondensedMatrix;
pub use sparse::{agglomerative_sparse, greedy_cluster_sparse, SparseSimGraph};
