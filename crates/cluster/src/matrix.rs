//! Condensed all-pairs similarity matrices.
//!
//! Stores only the strict upper triangle (`n·(n−1)/2` entries, `f32`)
//! — at 50 000 sequences that is ~5 GB as `f64` but 2.5 GB as `f32`,
//! and sketch-estimated similarities carry far less than 24 bits of
//! signal anyway. Construction is parallelized by *row partitioning*,
//! matching the paper's "calculation of all pairwise similarity is
//! performed in parallel by performing a row-wise partition".

use rayon::prelude::*;

/// Upper-triangle condensed matrix of pairwise values.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f32>,
}

impl CondensedMatrix {
    /// Build from a similarity oracle, in parallel over contiguous
    /// pair-balanced row blocks.
    ///
    /// Row `i` owns entries `(i, i+1..n)` — a contiguous slice of the
    /// condensed layout — so a *run* of rows is contiguous too. Rather
    /// than materializing one split borrow per row (an O(n) `Vec` that
    /// degenerate inputs built and immediately discarded), rows are
    /// cut into a handful of blocks with near-equal pair counts, one
    /// split borrow each.
    pub fn build_parallel<F>(n: usize, sim: F) -> CondensedMatrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let mut data = vec![0f32; n * n.saturating_sub(1) / 2];
        if n < 2 {
            return CondensedMatrix { n, data };
        }
        let total = n * (n - 1) / 2;
        // A few blocks per worker keeps the tail balanced without
        // recreating the per-row slice list.
        let tasks = std::thread::available_parallelism()
            .map(|p| p.get() * 4)
            .unwrap_or(32)
            .min(n - 1);
        let target = total.div_ceil(tasks).max(1);

        let mut blocks: Vec<(usize, &mut [f32])> = Vec::with_capacity(tasks + 1);
        let mut rest: &mut [f32] = &mut data;
        let mut block_start = 0usize;
        let mut block_len = 0usize;
        for r in 0..n - 1 {
            block_len += n - 1 - r;
            if block_len >= target || r == n - 2 {
                let (chunk, tail) = rest.split_at_mut(block_len);
                blocks.push((block_start, chunk));
                rest = tail;
                block_start = r + 1;
                block_len = 0;
            }
        }
        blocks.into_par_iter().for_each(|(first_row, chunk)| {
            let mut offset = 0usize;
            let mut i = first_row;
            while offset < chunk.len() {
                let row_len = n - 1 - i;
                for (k, slot) in chunk[offset..offset + row_len].iter_mut().enumerate() {
                    *slot = sim(i, i + 1 + k) as f32;
                }
                offset += row_len;
                i += 1;
            }
        });
        CondensedMatrix { n, data }
    }

    /// Build sequentially (for small inputs and tests).
    pub fn build<F>(n: usize, mut sim: F) -> CondensedMatrix
    where
        F: FnMut(usize, usize) -> f64,
    {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(sim(i, j) as f32);
            }
        }
        CondensedMatrix { n, data }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the 0-item matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Condensed index of `(i, j)`, `i != j`.
    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j, "diagonal not stored");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        // Offset of row i = sum_{r<i} (n-1-r) = i·n − i·(i+1)/2.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Value at `(i, j)`; panics on the diagonal or out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        f64::from(self.data[self.index(i, j)])
    }

    /// Set the value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        let idx = self.index(i, j);
        self.data[idx] = value as f32;
    }

    /// Raw condensed data (row-major upper triangle).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get_symmetric() {
        let m = CondensedMatrix::build(4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0); // symmetric access
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.get(0, 3), 3.0);
        assert_eq!(m.len(), 4);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn parallel_matches_sequential() {
        let sim = |i: usize, j: usize| ((i * 31 + j * 7) % 97) as f64 / 97.0;
        let a = CondensedMatrix::build(23, sim);
        let b = CondensedMatrix::build_parallel(23, sim);
        assert_eq!(a, b);
    }

    #[test]
    fn set_round_trips() {
        let mut m = CondensedMatrix::build(3, |_, _| 0.0);
        m.set(0, 2, 0.5);
        assert_eq!(m.get(2, 0), 0.5);
    }

    #[test]
    fn tiny_sizes() {
        let m = CondensedMatrix::build(0, |_, _| 0.0);
        assert!(m.is_empty());
        let m = CondensedMatrix::build(1, |_, _| 0.0);
        assert_eq!(m.len(), 1);
        assert!(m.as_slice().is_empty());
        let m = CondensedMatrix::build_parallel(2, |_, _| 0.25);
        assert_eq!(m.get(0, 1), 0.25);
    }

    // The diagonal check is a debug_assert (get/set are the hottest
    // loops in NN-chain), so it only fires in debug builds.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_access_panics() {
        let m = CondensedMatrix::build(3, |_, _| 0.0);
        m.get(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = CondensedMatrix::build(3, |_, _| 0.0);
        m.get(0, 3);
    }
}
