//! Owned sequence records.

use crate::stats::gc_content;

/// A single sequence record as parsed from FASTA.
///
/// `id` is the first whitespace-delimited token after `>`; `description`
/// is the remainder of the header line (possibly empty). The sequence is
/// stored as raw ASCII bytes so records survive a round trip even when
/// they contain ambiguity codes the 2-bit encoder rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqRecord {
    /// Unique identifier (first header token).
    pub id: String,
    /// Remainder of the header line after the id.
    pub description: String,
    /// Sequence bytes (ASCII, case preserved).
    pub seq: Vec<u8>,
}

impl SeqRecord {
    /// Construct a record from parts.
    pub fn new(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        SeqRecord {
            id: id.into(),
            description: String::new(),
            seq: seq.into(),
        }
    }

    /// Construct a record with a description.
    pub fn with_description(
        id: impl Into<String>,
        description: impl Into<String>,
        seq: impl Into<Vec<u8>>,
    ) -> Self {
        SeqRecord {
            id: id.into(),
            description: description.into(),
            seq: seq.into(),
        }
    }

    /// Sequence length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the sequence body is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// GC fraction of this record (0.0 for empty sequences).
    pub fn gc(&self) -> f64 {
        gc_content(&self.seq)
    }

    /// The sequence as a `&str`, assuming ASCII input (FASTA is).
    pub fn seq_str(&self) -> &str {
        // FASTA bodies are ASCII; fall back to lossless check.
        std::str::from_utf8(&self.seq).expect("sequence is not UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let r = SeqRecord::new("read1", b"ACGT".to_vec());
        assert_eq!(r.id, "read1");
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.seq_str(), "ACGT");
    }

    #[test]
    fn gc_of_record() {
        let r = SeqRecord::new("r", b"GGCC".to_vec());
        assert!((r.gc() - 1.0).abs() < 1e-12);
        let r = SeqRecord::new("r", b"AATT".to_vec());
        assert!(r.gc().abs() < 1e-12);
    }

    #[test]
    fn with_description_keeps_parts() {
        let r = SeqRecord::with_description("id1", "sample=53R depth=1400", b"AC".to_vec());
        assert_eq!(r.description, "sample=53R depth=1400");
    }
}
