//! The DNA alphabet and its 2-bit integer encoding.
//!
//! MrMC-MinH's `StringGenerator` UDF maps DNA characters to integers
//! before k-mer extraction. We use the conventional 2-bit code
//! `A=0, C=1, G=2, T=3`, which lets a k-mer of length ≤ 31 live in one
//! `u64` — the integer feature `x` fed to the universal hash functions
//! of Eq. 5.

use crate::error::SeqIoError;

/// A single unambiguous DNA nucleotide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Base {
    /// Adenine, code 0.
    A = 0,
    /// Cytosine, code 1.
    C = 1,
    /// Guanine, code 2.
    G = 2,
    /// Thymine, code 3.
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The base for a 2-bit code. Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 3 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Upper-case ASCII letter for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }
}

/// Encode one ASCII nucleotide into its 2-bit code.
///
/// Accepts upper- or lower-case `ACGT`. `U` (RNA) is treated as `T`,
/// which lets 16S rRNA-derived data flow through unchanged. Returns
/// `None` for ambiguity codes (`N`, IUPAC wobble letters) and anything
/// else — callers decide whether to skip, error, or split at ambiguous
/// positions (the k-mer iterator restarts after them, mirroring how the
/// paper's feature sets only contain exact k-mers).
#[inline]
pub fn encode_base(c: u8) -> Option<u8> {
    match c {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' | b'U' | b'u' => Some(3),
        _ => None,
    }
}

/// Whether `c` is an unambiguous nucleotide this crate encodes.
#[inline]
pub fn is_valid_base(c: u8) -> bool {
    encode_base(c).is_some()
}

/// Complement of an ASCII nucleotide, preserving case. Ambiguous codes
/// map to `N`.
#[inline]
pub fn complement(c: u8) -> u8 {
    match c {
        b'A' => b'T',
        b'a' => b't',
        b'C' => b'G',
        b'c' => b'g',
        b'G' => b'C',
        b'g' => b'c',
        b'T' | b'U' => b'A',
        b't' | b'u' => b'a',
        _ => b'N',
    }
}

/// Reverse-complement a DNA string into a fresh vector.
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&c| complement(c)).collect()
}

/// Validate that a sequence consists only of unambiguous nucleotides,
/// reporting the first offending position.
pub fn validate(seq: &[u8]) -> Result<(), SeqIoError> {
    match seq.iter().position(|&c| !is_valid_base(c)) {
        None => Ok(()),
        Some(pos) => Err(SeqIoError::InvalidBase {
            position: pos,
            byte: seq[pos],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(encode_base(b.to_ascii()), Some(b.code()));
        }
    }

    #[test]
    fn lower_case_and_rna_accepted() {
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b'u'), Some(3));
        assert_eq!(encode_base(b'U'), Some(3));
    }

    #[test]
    fn ambiguity_codes_rejected() {
        for c in [b'N', b'n', b'R', b'Y', b'-', b'*', b' '] {
            assert_eq!(encode_base(c), None, "{}", c as char);
        }
    }

    #[test]
    fn complement_is_involution_on_acgt() {
        for &c in b"ACGTacgt" {
            assert_eq!(complement(complement(c)), c);
        }
    }

    #[test]
    fn base_complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
        assert_eq!(Base::T.complement(), Base::A);
    }

    #[test]
    fn reverse_complement_known() {
        assert_eq!(reverse_complement(b"ACGGT"), b"ACCGT".to_vec());
        assert_eq!(reverse_complement(b""), Vec::<u8>::new());
    }

    #[test]
    fn validate_reports_position() {
        assert!(validate(b"ACGT").is_ok());
        match validate(b"ACNGT") {
            Err(SeqIoError::InvalidBase { position, byte }) => {
                assert_eq!(position, 2);
                assert_eq!(byte, b'N');
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
