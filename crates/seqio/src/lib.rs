//! Sequence I/O substrate for MrMC-MinH.
//!
//! The paper's pipeline (Fig. 1) begins with FASTA files stored on HDFS;
//! each mapper parses records, encodes the DNA alphabet into integers
//! (the `StringGenerator` UDF) and decomposes sequences into k-mers (the
//! `TranslateToKmer` UDF). This crate provides those primitives:
//!
//! * [`alphabet`] — the DNA alphabet, 2-bit nucleotide codes, complements
//!   and validation;
//! * [`record`] — owned sequence records with ids and descriptions;
//! * [`fasta`] — a streaming FASTA reader/writer tolerant of the
//!   formatting found in real amplicon datasets;
//! * [`encode`] — 2-bit packed encodings of whole sequences and k-mers;
//! * [`stats`] — per-sequence and per-sample summaries (GC content,
//!   length distributions) used by the dataset registry.
//!
//! Everything is `std`-only and allocation-conscious: record parsing
//! reuses buffers and k-mer encoding is rolling (O(1) per position).

pub mod alphabet;
pub mod encode;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod record;
pub mod stats;

pub use alphabet::{complement, encode_base, is_valid_base, Base};
pub use encode::{
    canonical_kmer, kmer_to_string, revcomp_kmer, CanonicalKmerIter, KmerIter, PackedSeq,
};
pub use error::SeqIoError;
pub use fasta::{read_fasta_bytes, read_fasta_path, write_fasta, FastaReader};
pub use fastq::{read_fastq_bytes, write_fastq, FastqReader, FastqRecord};
pub use record::SeqRecord;
pub use stats::{gc_content, LengthStats, SampleStats};
