//! FASTQ reading/writing and quality-based trimming.
//!
//! The paper's conclusion positions MrMC-MinH for data "currently
//! produced by the second and third generation sequencing
//! technologies" — which arrives as FASTQ. This module parses the
//! four-line format (Phred+33 qualities), converts to [`SeqRecord`]s
//! for the clustering pipeline, and provides the standard
//! sliding-window quality trim used before binning.

use std::io::{self, BufRead, Write};

use crate::error::SeqIoError;
use crate::record::SeqRecord;

/// One FASTQ record: sequence plus per-base Phred+33 qualities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Id and sequence.
    pub record: SeqRecord,
    /// Quality string, same length as the sequence (raw Phred+33
    /// bytes; subtract 33 for scores).
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Phred score (0-based) at position `i`.
    pub fn phred(&self, i: usize) -> u8 {
        self.qual[i].saturating_sub(33)
    }

    /// Mean Phred score; 0.0 for empty reads.
    pub fn mean_phred(&self) -> f64 {
        if self.qual.is_empty() {
            return 0.0;
        }
        self.qual
            .iter()
            .map(|&q| f64::from(q.saturating_sub(33)))
            .sum::<f64>()
            / self.qual.len() as f64
    }

    /// Trim the read at the first window (of `window` bases) whose
    /// mean Phred drops below `min_q` — the classic sliding-window
    /// 3'-end trim. Returns a (possibly empty) new record.
    pub fn quality_trim(&self, window: usize, min_q: f64) -> FastqRecord {
        let window = window.max(1);
        let n = self.qual.len();
        let mut cut = n;
        if n >= window {
            for start in 0..=(n - window) {
                let mean: f64 = self.qual[start..start + window]
                    .iter()
                    .map(|&q| f64::from(q.saturating_sub(33)))
                    .sum::<f64>()
                    / window as f64;
                if mean < min_q {
                    cut = start;
                    break;
                }
            }
        } else if self.mean_phred() < min_q {
            cut = 0;
        }
        FastqRecord {
            record: SeqRecord {
                id: self.record.id.clone(),
                description: self.record.description.clone(),
                seq: self.record.seq[..cut].to_vec(),
            },
            qual: self.qual[..cut].to_vec(),
        }
    }
}

/// Streaming FASTQ reader over any `BufRead`.
pub struct FastqReader<R: BufRead> {
    reader: R,
    line_no: usize,
}

impl<R: BufRead> FastqReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        FastqReader { reader, line_no: 0 }
    }

    fn read_line(&mut self, buf: &mut String) -> io::Result<usize> {
        buf.clear();
        let n = self.reader.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
        }
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(n)
    }

    fn next_record(&mut self) -> Result<Option<FastqRecord>, SeqIoError> {
        let mut header = String::new();
        // Skip blank lines between records.
        loop {
            if self.read_line(&mut header)? == 0 {
                return Ok(None);
            }
            if !header.trim().is_empty() {
                break;
            }
        }
        let header = header.trim();
        let body = header.strip_prefix('@').ok_or_else(|| SeqIoError::Format {
            line: self.line_no,
            message: format!("expected '@' header, found {header:?}"),
        })?;
        let (id, description) = match body.split_once(char::is_whitespace) {
            Some((id, rest)) => (id.to_string(), rest.trim().to_string()),
            None => (body.to_string(), String::new()),
        };
        if id.is_empty() {
            return Err(SeqIoError::Format {
                line: self.line_no,
                message: "empty record id".into(),
            });
        }

        let mut seq = String::new();
        if self.read_line(&mut seq)? == 0 {
            return Err(SeqIoError::Format {
                line: self.line_no,
                message: "truncated record: missing sequence line".into(),
            });
        }
        let mut plus = String::new();
        if self.read_line(&mut plus)? == 0 || !plus.starts_with('+') {
            return Err(SeqIoError::Format {
                line: self.line_no,
                message: format!("expected '+' separator, found {plus:?}"),
            });
        }
        let mut qual = String::new();
        if self.read_line(&mut qual)? == 0 {
            return Err(SeqIoError::Format {
                line: self.line_no,
                message: "truncated record: missing quality line".into(),
            });
        }
        if qual.len() != seq.len() {
            return Err(SeqIoError::Format {
                line: self.line_no,
                message: format!(
                    "quality length {} != sequence length {}",
                    qual.len(),
                    seq.len()
                ),
            });
        }
        Ok(Some(FastqRecord {
            record: SeqRecord {
                id,
                description,
                seq: seq.into_bytes(),
            },
            qual: qual.into_bytes(),
        }))
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<FastqRecord, SeqIoError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Parse a whole FASTQ byte slice.
pub fn read_fastq_bytes(bytes: &[u8]) -> Result<Vec<FastqRecord>, SeqIoError> {
    FastqReader::new(bytes).collect()
}

/// Serialize FASTQ records.
pub fn write_fastq<W: Write>(out: &mut W, records: &[FastqRecord]) -> io::Result<()> {
    for r in records {
        if r.record.description.is_empty() {
            writeln!(out, "@{}", r.record.id)?;
        } else {
            writeln!(out, "@{} {}", r.record.id, r.record.description)?;
        }
        out.write_all(&r.record.seq)?;
        writeln!(out)?;
        writeln!(out, "+")?;
        out.write_all(&r.qual)?;
        writeln!(out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, seq: &str, qual: &str) -> FastqRecord {
        FastqRecord {
            record: SeqRecord::new(id, seq.as_bytes().to_vec()),
            qual: qual.as_bytes().to_vec(),
        }
    }

    #[test]
    fn parse_single() {
        let recs = read_fastq_bytes(b"@r1 lane1\nACGT\n+\nIIII\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].record.id, "r1");
        assert_eq!(recs[0].record.description, "lane1");
        assert_eq!(recs[0].record.seq, b"ACGT");
        assert_eq!(recs[0].phred(0), b'I' - 33);
    }

    #[test]
    fn parse_multiple_and_round_trip() {
        let input = b"@a\nAC\n+\nII\n@b x\nGGTT\n+\n!!II\n";
        let recs = read_fastq_bytes(input).unwrap();
        assert_eq!(recs.len(), 2);
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        assert_eq!(read_fastq_bytes(&buf).unwrap(), recs);
    }

    #[test]
    fn format_errors() {
        assert!(matches!(
            read_fastq_bytes(b">r1\nACGT\n+\nIIII\n"),
            Err(SeqIoError::Format { .. })
        ));
        assert!(matches!(
            read_fastq_bytes(b"@r1\nACGT\nIIII\n"), // missing '+'
            Err(SeqIoError::Format { .. })
        ));
        assert!(matches!(
            read_fastq_bytes(b"@r1\nACGT\n+\nII\n"), // length mismatch
            Err(SeqIoError::Format { .. })
        ));
        assert!(matches!(
            read_fastq_bytes(b"@r1\nACGT\n"), // truncated
            Err(SeqIoError::Format { .. })
        ));
    }

    #[test]
    fn mean_phred() {
        let r = record("r", "ACGT", "IIII"); // I = Q40
        assert!((r.mean_phred() - 40.0).abs() < 1e-12);
        let empty = record("e", "", "");
        assert_eq!(empty.mean_phred(), 0.0);
    }

    #[test]
    fn quality_trim_cuts_bad_tail() {
        // Good prefix (Q40), bad tail (Q0 = '!'). The first window
        // with mean < 20 starts at position 3 (one I, three !), so the
        // read is cut there.
        let r = record("r", "ACGTACGT", "IIII!!!!");
        let trimmed = r.quality_trim(4, 20.0);
        assert_eq!(trimmed.record.seq, b"ACG");
        assert_eq!(trimmed.qual.len(), 3);
    }

    #[test]
    fn quality_trim_keeps_good_read() {
        let r = record("r", "ACGTACGT", "IIIIIIII");
        let trimmed = r.quality_trim(4, 20.0);
        assert_eq!(trimmed, r);
    }

    #[test]
    fn quality_trim_drops_all_bad_read() {
        let r = record("r", "ACGT", "!!!!");
        let trimmed = r.quality_trim(2, 20.0);
        assert!(trimmed.record.seq.is_empty());
        // Short read below one window, bad mean: also dropped.
        let r = record("r", "AC", "!!");
        assert!(r.quality_trim(4, 20.0).record.seq.is_empty());
    }

    #[test]
    fn blank_lines_between_records_skipped() {
        let recs = read_fastq_bytes(b"@a\nAC\n+\nII\n\n@b\nGT\n+\nII\n").unwrap();
        assert_eq!(recs.len(), 2);
    }
}
