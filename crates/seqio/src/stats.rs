//! Sequence and sample statistics used by the dataset registry and the
//! experiment tables (GC content brackets in Table II, read counts and
//! average lengths in Table I).

use crate::record::SeqRecord;

/// GC fraction of a sequence (ambiguous bases excluded from the
/// denominator); 0.0 for sequences with no unambiguous bases.
pub fn gc_content(seq: &[u8]) -> f64 {
    let mut gc = 0usize;
    let mut total = 0usize;
    for &c in seq {
        match c {
            b'G' | b'g' | b'C' | b'c' => {
                gc += 1;
                total += 1;
            }
            b'A' | b'a' | b'T' | b't' | b'U' | b'u' => total += 1,
            _ => {}
        }
    }
    if total == 0 {
        0.0
    } else {
        gc as f64 / total as f64
    }
}

/// Length distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthStats {
    /// Number of sequences.
    pub count: usize,
    /// Shortest sequence length.
    pub min: usize,
    /// Longest sequence length.
    pub max: usize,
    /// Mean length.
    pub mean: f64,
    /// Total bases.
    pub total: usize,
}

impl LengthStats {
    /// Compute from an iterator of lengths; `None` when empty.
    pub fn from_lengths(lengths: impl IntoIterator<Item = usize>) -> Option<LengthStats> {
        let mut count = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut total = 0usize;
        for len in lengths {
            count += 1;
            min = min.min(len);
            max = max.max(len);
            total += len;
        }
        if count == 0 {
            return None;
        }
        Some(LengthStats {
            count,
            min,
            max,
            mean: total as f64 / count as f64,
            total,
        })
    }
}

/// Whole-sample summary (one row of Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Length statistics over all reads.
    pub lengths: LengthStats,
    /// Mean GC fraction across reads (unweighted).
    pub mean_gc: f64,
}

impl SampleStats {
    /// Summarize a slice of records; `None` when empty.
    pub fn from_records(records: &[SeqRecord]) -> Option<SampleStats> {
        let lengths = LengthStats::from_lengths(records.iter().map(|r| r.len()))?;
        let mean_gc =
            records.iter().map(|r| gc_content(&r.seq)).sum::<f64>() / records.len() as f64;
        Some(SampleStats { lengths, mean_gc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_basic() {
        assert!((gc_content(b"GGCC") - 1.0).abs() < 1e-12);
        assert!((gc_content(b"GATC") - 0.5).abs() < 1e-12);
        assert_eq!(gc_content(b""), 0.0);
        assert_eq!(gc_content(b"NNN"), 0.0);
    }

    #[test]
    fn gc_ignores_ambiguous_in_denominator() {
        // 2 GC out of 4 unambiguous (N excluded).
        assert!((gc_content(b"GCNAT") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn length_stats() {
        let s = LengthStats::from_lengths([3, 5, 10]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 10);
        assert_eq!(s.total, 18);
        assert!((s.mean - 6.0).abs() < 1e-12);
        assert!(LengthStats::from_lengths([]).is_none());
    }

    #[test]
    fn sample_stats() {
        let records = vec![
            SeqRecord::new("a", b"GG".to_vec()),
            SeqRecord::new("b", b"AATT".to_vec()),
        ];
        let s = SampleStats::from_records(&records).unwrap();
        assert_eq!(s.lengths.count, 2);
        assert!((s.mean_gc - 0.5).abs() < 1e-12);
        assert!(SampleStats::from_records(&[]).is_none());
    }
}
