//! 2-bit packed sequence encodings and rolling k-mer extraction.
//!
//! A k-mer over `{A,C,G,T}` with `k ≤ 31` packs into a `u64` via the
//! 2-bit code of [`crate::alphabet`]. This is the integer feature `x`
//! that MrMC-MinH's universal hash functions consume (Eq. 5); the
//! maximum feature-set cardinality is `4^k`, matching the paper's
//! "maximum value of n = 4^k".

use crate::alphabet::{encode_base, Base};
use crate::error::SeqIoError;

/// Largest supported k-mer size (2 bits × 31 = 62 bits < 64, leaving
/// headroom so `4^k` itself still fits in a `u64`).
pub const MAX_K: usize = 31;

/// Iterator over the 2-bit packed k-mers of a sequence.
///
/// Ambiguous bases (anything [`encode_base`] rejects) *reset* the
/// window: no k-mer spanning them is produced. This mirrors the paper's
/// feature sets, which only contain exact nucleotide k-mers.
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    mask: u64,
    /// Current packed window value.
    current: u64,
    /// Number of valid bases currently in the window.
    filled: usize,
    /// Next position to consume.
    pos: usize,
}

impl<'a> KmerIter<'a> {
    /// Create a k-mer iterator; errors if `k == 0` or `k > MAX_K`.
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self, SeqIoError> {
        if k == 0 || k > MAX_K {
            return Err(SeqIoError::BadKmerSize { k, max: MAX_K });
        }
        let mask = if 2 * k == 64 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        Ok(KmerIter {
            seq,
            k,
            mask,
            current: 0,
            filled: 0,
            pos: 0,
        })
    }

    /// The k this iterator extracts.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Iterator for KmerIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.pos < self.seq.len() {
            let c = self.seq[self.pos];
            self.pos += 1;
            match encode_base(c) {
                Some(code) => {
                    self.current = ((self.current << 2) | u64::from(code)) & self.mask;
                    self.filled = (self.filled + 1).min(self.k);
                    if self.filled == self.k {
                        return Some(self.current);
                    }
                }
                None => {
                    self.current = 0;
                    self.filled = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len() - self.pos;
        // Upper bound: every remaining base completes a k-mer.
        (0, Some(remaining + usize::from(self.filled == self.k)))
    }
}

/// Collect the *distinct* packed k-mers of a sequence — the feature set
/// `I_s` of the paper. Order is unspecified.
pub fn kmer_set(seq: &[u8], k: usize) -> Result<Vec<u64>, SeqIoError> {
    let mut v: Vec<u64> = KmerIter::new(seq, k)?.collect();
    v.sort_unstable();
    v.dedup();
    Ok(v)
}

/// Reverse complement of a packed k-mer.
///
/// With the 2-bit code `A=0, C=1, G=2, T=3`, a base's complement is its
/// bitwise NOT (`A↔T` is `00↔11`, `C↔G` is `01↔10`), so the reverse
/// complement is: complement every 2-bit pair, then reverse pair order.
#[inline]
pub fn revcomp_kmer(kmer: u64, k: usize) -> u64 {
    debug_assert!((1..=MAX_K).contains(&k));
    let mut x = !kmer; // complement every base (junk in high bits, shifted out below)
                       // Reverse the 2-bit groups: swap adjacent pairs, nibbles, bytes, …
    x = ((x & 0x3333_3333_3333_3333) << 2) | ((x >> 2) & 0x3333_3333_3333_3333);
    x = ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4) | ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F);
    x = x.swap_bytes();
    // The k-mer now occupies the top 2k bits; shift it down.
    x >> (64 - 2 * k)
}

/// The canonical form of a packed k-mer: the lexicographic minimum of
/// the k-mer and its reverse complement. Canonical k-mers make sketches
/// strand-independent — essential for shotgun reads, whose orientation
/// is random (the convention of Mash and modern minhash tools; the
/// paper's pipeline is strand-sensitive).
#[inline]
pub fn canonical_kmer(kmer: u64, k: usize) -> u64 {
    kmer.min(revcomp_kmer(kmer, k))
}

/// Iterator over canonical k-mers (see [`canonical_kmer`]).
pub struct CanonicalKmerIter<'a> {
    inner: KmerIter<'a>,
}

impl<'a> CanonicalKmerIter<'a> {
    /// Create a canonical k-mer iterator; same k bounds as [`KmerIter`].
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self, SeqIoError> {
        Ok(CanonicalKmerIter {
            inner: KmerIter::new(seq, k)?,
        })
    }
}

impl Iterator for CanonicalKmerIter<'_> {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let k = self.inner.k();
        self.inner.next().map(|km| canonical_kmer(km, k))
    }
}

/// Decode a packed k-mer back into its ASCII string (for debugging and
/// round-trip tests).
pub fn kmer_to_string(kmer: u64, k: usize) -> String {
    let mut s = vec![0u8; k];
    let mut v = kmer;
    for i in (0..k).rev() {
        s[i] = Base::from_code((v & 3) as u8).to_ascii();
        v >>= 2;
    }
    String::from_utf8(s).expect("bases are ASCII")
}

/// A whole sequence packed 2 bits per base, with positions of ambiguous
/// bases recorded so the original length is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Pack a sequence; ambiguous bases are stored as `A` (code 0).
    /// Use [`crate::alphabet::validate`] first if that matters.
    pub fn pack(seq: &[u8]) -> PackedSeq {
        let len = seq.len();
        let mut words = vec![0u64; len.div_ceil(32)];
        for (i, &c) in seq.iter().enumerate() {
            let code = u64::from(encode_base(c).unwrap_or(0));
            words[i / 32] |= code << (2 * (i % 32));
        }
        PackedSeq { words, len }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// 2-bit code of the base at `i` (panics when out of bounds).
    #[inline]
    pub fn code_at(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        ((self.words[i / 32] >> (2 * (i % 32))) & 3) as u8
    }

    /// Unpack back to ASCII.
    pub fn unpack(&self) -> Vec<u8> {
        (0..self.len)
            .map(|i| Base::from_code(self.code_at(i)).to_ascii())
            .collect()
    }

    /// Heap memory used, in bytes (for the DFS block accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmer_iter_simple() {
        // ACGT: k=2 → AC, CG, GT = 0b0001, 0b0110, 0b1011
        let kmers: Vec<u64> = KmerIter::new(b"ACGT", 2).unwrap().collect();
        assert_eq!(kmers, vec![0b0001, 0b0110, 0b1011]);
    }

    #[test]
    fn kmer_iter_resets_at_ambiguity() {
        // ACN GT with k=2: only AC and GT; CN/NG skipped.
        let kmers: Vec<u64> = KmerIter::new(b"ACNGT", 2).unwrap().collect();
        assert_eq!(kmers, vec![0b0001, 0b1011]);
    }

    #[test]
    fn kmer_iter_short_sequence_empty() {
        let kmers: Vec<u64> = KmerIter::new(b"AC", 3).unwrap().collect();
        assert!(kmers.is_empty());
    }

    #[test]
    fn kmer_bad_sizes_rejected() {
        assert!(KmerIter::new(b"ACGT", 0).is_err());
        assert!(KmerIter::new(b"ACGT", 32).is_err());
        assert!(KmerIter::new(b"ACGT", 31).is_ok());
    }

    #[test]
    fn kmer_round_trip_strings() {
        let seq = b"ACGTTGCAACGT";
        for k in [1usize, 3, 5, 8] {
            let kmers: Vec<u64> = KmerIter::new(seq, k).unwrap().collect();
            for (i, km) in kmers.iter().enumerate() {
                let expect = std::str::from_utf8(&seq[i..i + k]).unwrap();
                assert_eq!(kmer_to_string(*km, k), expect);
            }
        }
    }

    #[test]
    fn kmer_set_dedups() {
        // AAAA has 3 overlapping 2-mers, all AA.
        let set = kmer_set(b"AAAA", 2).unwrap();
        assert_eq!(set, vec![0]);
    }

    #[test]
    fn packed_seq_round_trip() {
        let seq = b"ACGTACGTACGTACGTACGTACGTACGTACGTACG"; // 35 bases, crosses word
        let p = PackedSeq::pack(seq);
        assert_eq!(p.len(), seq.len());
        assert_eq!(p.unpack(), seq.to_vec());
    }

    #[test]
    fn packed_seq_empty() {
        let p = PackedSeq::pack(b"");
        assert!(p.is_empty());
        assert!(p.unpack().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn packed_seq_out_of_bounds_panics() {
        PackedSeq::pack(b"AC").code_at(2);
    }

    #[test]
    fn revcomp_kmer_matches_string_revcomp() {
        use crate::alphabet::reverse_complement;
        let seq = b"ACGTTGCAGGATCCTA";
        for k in [1usize, 2, 3, 5, 8, 16] {
            let kmers: Vec<u64> = KmerIter::new(seq, k).unwrap().collect();
            for (i, &km) in kmers.iter().enumerate() {
                let rc_str = reverse_complement(&seq[i..i + k]);
                let expect: u64 = KmerIter::new(&rc_str, k).unwrap().next().unwrap();
                assert_eq!(
                    revcomp_kmer(km, k),
                    expect,
                    "k={k} kmer {}",
                    kmer_to_string(km, k)
                );
            }
        }
    }

    #[test]
    fn revcomp_is_involution() {
        for k in [1usize, 4, 7, 15, 31] {
            for kmer in [0u64, 1, 0b1101, (1 << (2 * k)) - 1] {
                let kmer = kmer & ((1u64 << (2 * k.min(31))) - 1).max(1);
                assert_eq!(revcomp_kmer(revcomp_kmer(kmer, k), k), kmer, "k={k}");
            }
        }
    }

    #[test]
    fn canonical_invariant_under_strand() {
        use crate::alphabet::reverse_complement;
        let seq = b"ACGTTGCAGGATCCTAGGTTACAC";
        let rc = reverse_complement(seq);
        for k in [3usize, 5, 8] {
            let mut a: Vec<u64> = CanonicalKmerIter::new(seq, k).unwrap().collect();
            let mut b: Vec<u64> = CanonicalKmerIter::new(&rc, k).unwrap().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "k={k}: canonical sets must be strand-invariant");
        }
    }

    #[test]
    fn canonical_palindrome_fixed_point() {
        // ACGT's revcomp is itself (restriction-site palindrome).
        let kmers: Vec<u64> = KmerIter::new(b"ACGT", 4).unwrap().collect();
        assert_eq!(canonical_kmer(kmers[0], 4), kmers[0]);
    }

    #[test]
    fn size_hint_upper_bound_holds() {
        let mut it = KmerIter::new(b"ACGTACGT", 3).unwrap();
        let (_, upper) = it.size_hint();
        let count = it.by_ref().count();
        assert!(count <= upper.unwrap());
    }
}
