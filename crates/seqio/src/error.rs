//! Error type for sequence parsing and encoding.

use std::fmt;
use std::io;

/// Errors produced while reading, validating, or encoding sequences.
#[derive(Debug)]
pub enum SeqIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A record body contained a byte that is not an unambiguous
    /// nucleotide and the caller requested strict validation.
    InvalidBase {
        /// 0-based offset within the sequence.
        position: usize,
        /// The offending byte.
        byte: u8,
    },
    /// FASTA structure violation (e.g. sequence data before any header).
    Format {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A k-mer size outside the supported range was requested.
    BadKmerSize {
        /// The requested k.
        k: usize,
        /// Largest supported k.
        max: usize,
    },
    /// A record id was empty or duplicated where uniqueness is required.
    BadRecordId(String),
}

impl fmt::Display for SeqIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqIoError::Io(e) => write!(f, "I/O error: {e}"),
            SeqIoError::InvalidBase { position, byte } => write!(
                f,
                "invalid nucleotide {:?} at position {position}",
                *byte as char
            ),
            SeqIoError::Format { line, message } => {
                write!(f, "FASTA format error at line {line}: {message}")
            }
            SeqIoError::BadKmerSize { k, max } => {
                write!(f, "k-mer size {k} unsupported (must be 1..={max})")
            }
            SeqIoError::BadRecordId(id) => write!(f, "bad record id: {id:?}"),
        }
    }
}

impl std::error::Error for SeqIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqIoError {
    fn from(e: io::Error) -> Self {
        SeqIoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SeqIoError::InvalidBase {
            position: 7,
            byte: b'N',
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('N'), "{s}");

        let e = SeqIoError::BadKmerSize { k: 40, max: 31 };
        assert!(e.to_string().contains("40"));
    }

    #[test]
    fn io_error_converts() {
        let e: SeqIoError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(matches!(e, SeqIoError::Io(_)));
    }
}
