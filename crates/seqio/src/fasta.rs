//! Streaming FASTA reader and writer.
//!
//! The reader is an iterator over [`SeqRecord`]s driven by any
//! `BufRead`, tolerating multi-line bodies, `\r\n` endings, blank lines
//! and trailing whitespace — the realities of amplicon datasets. The
//! paper's `FastaStorage` UDF plays the same role on HDFS; here the same
//! parser backs both local files and DFS blocks.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::error::SeqIoError;
use crate::record::SeqRecord;

/// Iterator over FASTA records from any buffered reader.
pub struct FastaReader<R: BufRead> {
    reader: R,
    /// Lookahead header line (without `>`), if one has been consumed.
    pending_header: Option<String>,
    line_no: usize,
    done: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        FastaReader {
            reader,
            pending_header: None,
            line_no: 0,
            done: false,
        }
    }

    fn read_line(&mut self, buf: &mut String) -> io::Result<usize> {
        buf.clear();
        let n = self.reader.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
        }
        // Strip any trailing CR/LF.
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(n)
    }

    fn next_record(&mut self) -> Result<Option<SeqRecord>, SeqIoError> {
        let mut line = String::new();
        // Find the header: either the pending one or scan forward.
        let header = loop {
            if let Some(h) = self.pending_header.take() {
                break h;
            }
            let n = self.read_line(&mut line)?;
            if n == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with(';') {
                continue; // blank line or old-style comment
            }
            if let Some(rest) = trimmed.strip_prefix('>') {
                break rest.to_string();
            }
            return Err(SeqIoError::Format {
                line: self.line_no,
                message: format!("sequence data before any '>' header: {trimmed:?}"),
            });
        };

        let (id, description) = match header.split_once(char::is_whitespace) {
            Some((id, rest)) => (id.to_string(), rest.trim().to_string()),
            None => (header.clone(), String::new()),
        };
        if id.is_empty() {
            return Err(SeqIoError::Format {
                line: self.line_no,
                message: "empty record id".to_string(),
            });
        }

        let mut seq = Vec::new();
        loop {
            let n = self.read_line(&mut line)?;
            if n == 0 {
                self.done = true;
                break;
            }
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with(';') {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix('>') {
                self.pending_header = Some(rest.to_string());
                break;
            }
            seq.extend(trimmed.bytes().filter(|b| !b.is_ascii_whitespace()));
        }

        Ok(Some(SeqRecord {
            id,
            description,
            seq,
        }))
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<SeqRecord, SeqIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done && self.pending_header.is_none() {
            return None;
        }
        self.next_record().transpose()
    }
}

/// Parse every record from an in-memory FASTA byte slice.
pub fn read_fasta_bytes(bytes: &[u8]) -> Result<Vec<SeqRecord>, SeqIoError> {
    FastaReader::new(bytes).collect()
}

/// Parse every record from a file on disk.
pub fn read_fasta_path(path: impl AsRef<Path>) -> Result<Vec<SeqRecord>, SeqIoError> {
    let file = File::open(path)?;
    FastaReader::new(BufReader::new(file)).collect()
}

/// Serialize records to FASTA, wrapping bodies at `width` columns
/// (0 = no wrapping).
pub fn write_fasta<W: Write>(out: &mut W, records: &[SeqRecord], width: usize) -> io::Result<()> {
    for r in records {
        if r.description.is_empty() {
            writeln!(out, ">{}", r.id)?;
        } else {
            writeln!(out, ">{} {}", r.id, r.description)?;
        }
        if width == 0 {
            out.write_all(&r.seq)?;
            writeln!(out)?;
        } else {
            for chunk in r.seq.chunks(width) {
                out.write_all(chunk)?;
                writeln!(out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_record() {
        let recs = read_fasta_bytes(b">r1 a description\nACGT\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "r1");
        assert_eq!(recs[0].description, "a description");
        assert_eq!(recs[0].seq, b"ACGT");
    }

    #[test]
    fn parses_multi_line_bodies_and_crlf() {
        let recs = read_fasta_bytes(b">r1\r\nACGT\r\nTTAA\r\n>r2\nGG\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGTTTAA");
        assert_eq!(recs[1].seq, b"GG");
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let recs = read_fasta_bytes(b"; file comment\n\n>r1\n\nAC\n;mid\nGT\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, b"ACGT");
    }

    #[test]
    fn record_with_empty_body_is_kept() {
        let recs = read_fasta_bytes(b">r1\n>r2\nAC\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].seq.is_empty());
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = read_fasta_bytes(b"ACGT\n>r1\nAC\n").unwrap_err();
        assert!(matches!(err, SeqIoError::Format { line: 1, .. }));
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(read_fasta_bytes(b"").unwrap().is_empty());
        assert!(read_fasta_bytes(b"\n\n").unwrap().is_empty());
    }

    #[test]
    fn round_trip_with_wrapping() {
        let records = vec![
            SeqRecord::with_description("a", "desc", b"ACGTACGTACGT".to_vec()),
            SeqRecord::new("b", b"TT".to_vec()),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 5).unwrap();
        let parsed = read_fasta_bytes(&buf).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn round_trip_without_wrapping() {
        let records = vec![SeqRecord::new("x", b"ACGT".to_vec())];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 0).unwrap();
        assert_eq!(read_fasta_bytes(&buf).unwrap(), records);
    }

    #[test]
    fn whitespace_within_body_lines_is_dropped() {
        let recs = read_fasta_bytes(b">r1\nAC GT\n").unwrap();
        assert_eq!(recs[0].seq, b"ACGT");
    }
}
