//! Property-based tests for the sequence I/O substrate.

use proptest::prelude::*;

use mrmc_seqio::encode::{kmer_set, kmer_to_string, KmerIter, PackedSeq};
use mrmc_seqio::fasta::{read_fasta_bytes, write_fasta};
use mrmc_seqio::stats::gc_content;
use mrmc_seqio::SeqRecord;

/// Strategy: clean DNA sequences.
fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..max_len,
    )
}

/// Strategy: record ids (no whitespace, non-empty).
fn record_id() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_.:-]{1,20}"
}

proptest! {
    /// FASTA writing then reading returns the same records, at any
    /// wrap width.
    #[test]
    fn fasta_round_trip(
        ids in proptest::collection::vec(record_id(), 1..8),
        seqs in proptest::collection::vec(dna(200), 1..8),
        width in 0usize..80,
    ) {
        let n = ids.len().min(seqs.len());
        // Make ids unique by suffixing the index.
        let records: Vec<SeqRecord> = (0..n)
            .map(|i| SeqRecord::new(format!("{}_{i}", ids[i]), seqs[i].clone()))
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, width).unwrap();
        let parsed = read_fasta_bytes(&buf).unwrap();
        prop_assert_eq!(parsed, records);
    }

    /// Clean sequences produce exactly len−k+1 k-mers, each decoding
    /// to the corresponding substring.
    #[test]
    fn kmer_count_and_decode(seq in dna(120), k in 1usize..12) {
        let kmers: Vec<u64> = KmerIter::new(&seq, k).unwrap().collect();
        let expected = seq.len().saturating_sub(k).checked_add(1).unwrap_or(0);
        let expected = if seq.len() < k { 0 } else { expected };
        prop_assert_eq!(kmers.len(), expected);
        for (i, km) in kmers.iter().enumerate() {
            let s = kmer_to_string(*km, k);
            prop_assert_eq!(s.as_bytes(), &seq[i..i + k]);
        }
    }

    /// kmer_set is sorted, deduplicated, and a subset of the stream.
    #[test]
    fn kmer_set_invariants(seq in dna(150), k in 1usize..10) {
        let set = kmer_set(&seq, k).unwrap();
        prop_assert!(set.windows(2).all(|w| w[0] < w[1]));
        let all: Vec<u64> = KmerIter::new(&seq, k).unwrap().collect();
        for km in &set {
            prop_assert!(all.contains(km));
        }
    }

    /// 2-bit packing round-trips clean DNA.
    #[test]
    fn packed_round_trip(seq in dna(200)) {
        let packed = PackedSeq::pack(&seq);
        prop_assert_eq!(packed.unpack(), seq);
    }

    /// GC content is a fraction.
    #[test]
    fn gc_bounded(seq in dna(300)) {
        let gc = gc_content(&seq);
        prop_assert!((0.0..=1.0).contains(&gc));
    }

    /// The FASTA parser never panics on arbitrary bytes (errors are
    /// fine, crashes are not).
    #[test]
    fn parser_total_on_arbitrary_input(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_fasta_bytes(&bytes);
    }
}
