//! Unsupervised θ selection for whole-metagenome runs.
//!
//! The paper fixes θ = 0.95 for 16S (where within-OTU identity is a
//! community convention) but never states θ for the whole-metagenome
//! experiments, where the composition-similarity scale depends on the
//! sample. This module picks θ from the data: sketch a read
//! subsample, histogram the pairwise sketch similarities, and take the
//! **Otsu threshold** — the split maximizing inter-class variance —
//! which lands between the within-genome mode and the cross-genome
//! mode whenever the sample is separable at all.

use crate::config::MrMcConfig;
use crate::stages::sketch_similarity;
use mrmc_minhash::MinHasher;
use mrmc_seqio::SeqRecord;

/// Otsu's method on a slice of values in `[0, 1]`: the threshold
/// maximizing between-class variance over a 64-bin histogram.
/// Returns 0.5 for empty input.
pub fn otsu_threshold(values: &[f64]) -> f64 {
    const BINS: usize = 64;
    if values.is_empty() {
        return 0.5;
    }
    let mut hist = [0usize; BINS];
    for &v in values {
        let b = ((v.clamp(0.0, 1.0)) * (BINS as f64 - 1.0)).round() as usize;
        hist[b] += 1;
    }
    let total = values.len() as f64;
    let bin_value = |b: usize| (b as f64 + 0.5) / BINS as f64;
    let global_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(b, &n)| bin_value(b) * n as f64)
        .sum::<f64>()
        / total;

    // Between-class variance per split point. The variance is flat
    // across any empty gap between two modes, so take the *midpoint*
    // of the maximizing plateau rather than its first bin — that puts
    // θ centrally between the cross-cluster and within-cluster modes.
    let mut vars = vec![-1.0f64; BINS - 1];
    let mut w0 = 0.0f64;
    let mut sum0 = 0.0f64;
    for b in 0..BINS - 1 {
        w0 += hist[b] as f64;
        sum0 += bin_value(b) * hist[b] as f64;
        let w1 = total - w0;
        if w0 == 0.0 || w1 == 0.0 {
            continue;
        }
        let m0 = sum0 / w0;
        let m1 = (global_mean * total - sum0) / w1;
        vars[b] = w0 * w1 * (m0 - m1) * (m0 - m1);
    }
    let best_var = vars.iter().cloned().fold(-1.0, f64::max);
    if best_var < 0.0 {
        return 0.5;
    }
    let tol = best_var * 1e-9;
    let first = vars
        .iter()
        .position(|&v| v >= best_var - tol)
        .expect("max exists");
    let last = vars
        .iter()
        .rposition(|&v| v >= best_var - tol)
        .expect("max exists");
    let split = |b: usize| (bin_value(b) + bin_value(b + 1)) / 2.0;
    (split(first) + split(last)) / 2.0
}

/// Suggest θ for a read set: sketch up to `sample` evenly-spaced reads
/// with the config's hashing parameters, Otsu on their all-pairs
/// similarities. Deterministic (no RNG: stride subsampling).
pub fn suggest_theta(reads: &[SeqRecord], config: &MrMcConfig, sample: usize) -> f64 {
    let sample = sample.clamp(2, reads.len().max(2));
    if reads.len() < 2 {
        return 0.5;
    }
    let stride = (reads.len() / sample).max(1);
    let subset: Vec<&SeqRecord> = reads.iter().step_by(stride).take(sample).collect();
    let mut hasher = MinHasher::for_kmer_size(config.kmer, config.num_hashes, config.seed);
    if config.canonical {
        hasher = hasher.canonical();
    }
    let sketches: Vec<_> = subset
        .iter()
        .map(|r| hasher.sketch_sequence(&r.seq).expect("k validated"))
        .collect();
    let mut sims = Vec::with_capacity(sketches.len() * (sketches.len() - 1) / 2);
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            sims.push(sketch_similarity(
                &sketches[i],
                &sketches[j],
                config.estimator,
            ));
        }
    }
    otsu_threshold(&sims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn otsu_splits_bimodal() {
        let mut values = Vec::new();
        for i in 0..100 {
            values.push(0.30 + (i % 10) as f64 * 0.005); // mode near 0.32
            values.push(0.70 + (i % 10) as f64 * 0.005); // mode near 0.72
        }
        let t = otsu_threshold(&values);
        assert!((0.4..0.68).contains(&t), "t = {t}");
    }

    #[test]
    fn otsu_handles_degenerate_inputs() {
        assert_eq!(otsu_threshold(&[]), 0.5);
        let t = otsu_threshold(&[0.6; 50]);
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn otsu_unbalanced_modes() {
        let mut values = vec![0.2; 900];
        values.extend(vec![0.9; 100]);
        let t = otsu_threshold(&values);
        assert!((0.25..0.85).contains(&t), "t = {t}");
    }

    #[test]
    fn suggest_theta_lands_between_modes() {
        use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};
        let spec = CommunitySpec {
            species: vec![
                SpeciesSpec {
                    name: "a".into(),
                    gc: 0.45,
                    abundance: 1.0,
                },
                SpeciesSpec {
                    name: "b".into(),
                    gc: 0.55,
                    abundance: 1.0,
                },
            ],
            rank: TaxRank::Order,
            genome_len: 60_000,
        };
        let sim = ReadSimulator::new(800, ErrorModel::with_total_rate(0.002));
        let d = spec.generate("t", 80, &sim, 5);
        let config = MrMcConfig {
            num_hashes: 64,
            ..MrMcConfig::whole_metagenome()
        };
        let theta = suggest_theta(&d.reads, &config, 60);
        // Must be an interior threshold, not a degenerate extreme.
        assert!((0.2..0.9).contains(&theta), "theta = {theta}");
    }

    #[test]
    fn suggest_theta_tiny_inputs() {
        let config = MrMcConfig::whole_metagenome();
        assert_eq!(suggest_theta(&[], &config, 10), 0.5);
        let one = vec![mrmc_seqio::SeqRecord::new("a", b"ACGTACGT".to_vec())];
        assert_eq!(suggest_theta(&one, &config, 10), 0.5);
    }
}
