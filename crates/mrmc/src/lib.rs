//! **MrMC-MinH** — Map-Reduce metagenome clustering with minwise
//! hashing (Rasheed & Rangwala, IPPS 2013), the paper's primary
//! contribution.
//!
//! Two clustering modes over minhash sketches of k-mer feature sets:
//!
//! * **MrMC-MinH<sup>g</sup>** (greedy, Algorithm 1) — incremental,
//!   representative-based, fast;
//! * **MrMC-MinH<sup>h</sup>** (hierarchical, Algorithm 2) — all-pairs
//!   sketch similarity matrix (computed by row partitioning across the
//!   Map-Reduce substrate) + agglomerative clustering with
//!   single/average/complete linkage and a θ cutoff.
//!
//! # Quickstart
//!
//! ```
//! use mrmc::{MrMcConfig, MrMcMinH, Mode};
//! use mrmc_seqio::SeqRecord;
//!
//! let reads = vec![
//!     SeqRecord::new("a1", b"ACGTACGTACGTACGTTTTT".to_vec()),
//!     SeqRecord::new("a2", b"ACGTACGTACGTACGTTTTT".to_vec()),
//!     SeqRecord::new("b1", b"GGGGCCCCGGGGCCCCAAAA".to_vec()),
//! ];
//! let config = MrMcConfig {
//!     kmer: 5,
//!     num_hashes: 64,
//!     theta: 0.9,
//!     mode: Mode::Hierarchical,
//!     ..Default::default()
//! };
//! let result = MrMcMinH::new(config).run(&reads).unwrap();
//! assert_eq!(result.assignment.num_clusters(), 2);
//! ```
//!
//! The [`udfs`] module additionally exposes the algorithm as the Pig
//! UDFs of the paper's Algorithm 3 (`FastaStorage`,
//! `CalculateMinwiseHash`, …) so the published script runs end-to-end
//! on the [`mrmc_pig`] engine; [`scaling`] drives the Figure 2
//! cluster-scaling experiment on the simulated-time model.

pub mod banded;
pub mod config;
pub mod incremental;
pub mod pipeline;
pub mod scaling;
pub mod stages;
pub mod threshold;
pub mod udfs;

pub use banded::{banded_candidates, banded_graph_stage};
pub use config::{CandidateGen, Estimator, Mode, MrMcConfig, WireFormat, DEFAULT_SIG_BITS};
pub use incremental::IncrementalClusterer;
pub use pipeline::{MrMcMinH, MrMcResult};
pub use scaling::{CostCalibration, ScalingPoint};
pub use threshold::{otsu_threshold, suggest_theta};
pub use udfs::{algorithm3_script, register_mrmc_udfs};
