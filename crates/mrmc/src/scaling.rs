//! The Figure 2 scaling study: runtime vs. nodes vs. input size.
//!
//! The paper measures the hierarchical pipeline on 2–12 EMR nodes for
//! 10³–10⁷ reads. A single machine cannot execute 10⁷-read all-pairs
//! similarity (~5·10¹³ sketch comparisons), so the study runs on the
//! documented substitution: per-record costs are **measured** from
//! real executions at feasible sizes ([`CostCalibration::measure`]),
//! then each job's task list is synthesized for the target size and
//! list-scheduled onto the virtual cluster
//! ([`mrmc_mapreduce::ClusterSpec`]).

use std::time::Instant;

use mrmc_mapreduce::{ClusterSpec, JobCostModel};
use mrmc_minhash::{positional_similarity, MinHasher};
use mrmc_seqio::SeqRecord;

use crate::config::MrMcConfig;

/// Measured per-record costs (seconds) of the pipeline's kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCalibration {
    /// Seconds to sketch one read.
    pub sketch_per_read: f64,
    /// Seconds to compare one sketch pair.
    pub sim_per_pair: f64,
    /// Seconds to compute one read's full set of band signatures.
    pub sig_per_read: f64,
    /// Bytes shuffled per read (sketch size).
    pub shuffle_bytes_per_read: f64,
}

impl CostCalibration {
    /// Measure the kernels on synthetic reads of `read_len` bases.
    pub fn measure(config: &MrMcConfig, read_len: usize) -> CostCalibration {
        let hasher = MinHasher::for_kmer_size(config.kmer, config.num_hashes, config.seed);
        // A deterministic pseudo-random read (no RNG dependency here).
        let make_read = |salt: usize| -> SeqRecord {
            let seq: Vec<u8> = (0..read_len)
                .map(|i| b"ACGT"[(i * 1103515245 + salt * 12345 + 7) % 4])
                .collect();
            SeqRecord::new(format!("cal{salt}"), seq)
        };
        let reads: Vec<SeqRecord> = (0..256).map(make_read).collect();

        let t0 = Instant::now();
        let sketches: Vec<_> = reads
            .iter()
            .map(|r| hasher.sketch_sequence(&r.seq).expect("valid k"))
            .collect();
        let sketch_per_read = t0.elapsed().as_secs_f64() / reads.len() as f64;

        let t1 = Instant::now();
        let mut pairs = 0usize;
        let mut acc = 0.0f64;
        for i in 0..sketches.len() {
            for j in (i + 1)..sketches.len() {
                acc += positional_similarity(&sketches[i], &sketches[j]);
                pairs += 1;
            }
        }
        std::hint::black_box(acc);
        let sim_per_pair = t1.elapsed().as_secs_f64() / pairs as f64;

        let scheme = config.banding_scheme();
        let t2 = Instant::now();
        let mut sigs = Vec::new();
        let mut folded = 0u64;
        for s in &sketches {
            scheme.signatures_into(s, &mut sigs);
            folded ^= sigs.iter().copied().fold(0, u64::wrapping_add);
        }
        std::hint::black_box(folded);
        let sig_per_read = t2.elapsed().as_secs_f64() / sketches.len() as f64;

        CostCalibration {
            sketch_per_read,
            sim_per_pair,
            sig_per_read,
            shuffle_bytes_per_read: (config.num_hashes * 8) as f64,
        }
    }

    /// Simulated total runtime (seconds) of the hierarchical pipeline
    /// on `nodes` nodes for `num_reads` reads.
    pub fn simulate(&self, num_reads: u64, nodes: usize, model: &JobCostModel) -> f64 {
        let cluster = ClusterSpec::m1_large(nodes);
        // Hadoop sizes map tasks at roughly one per block; one task per
        // 64k reads, at least 2 per node slot for balance.
        let map_tasks = ((num_reads / 65_536).max(1) as usize).max(cluster.map_slots() * 2);

        // Job 1: sketching. The sketches themselves are the shuffle
        // payload (n hash values of 8 bytes per read).
        let total_sketch = num_reads as f64 * self.sketch_per_read;
        let sketch_costs = vec![total_sketch / map_tasks as f64; map_tasks];
        let sketch_bytes = (num_reads as f64 * self.shuffle_bytes_per_read) as u64;
        let job1 = cluster.simulate_job_bytes(
            model,
            &sketch_costs,
            num_reads,
            sketch_bytes,
            &[],
            mrmc_mapreduce::chaos::RecoveryCounters::new(),
        );

        // Job 2: all-pairs similarity, row-partitioned. The real stage
        // cuts row blocks on pair counts (`balanced_row_blocks` in
        // mrmc::stages), so per-task costs are level and the uniform
        // vector is the faithful model of its task timings.
        let pairs = num_reads as f64 * (num_reads as f64 - 1.0) / 2.0;
        let total_sim = pairs * self.sim_per_pair;
        let sim_tasks = (map_tasks * 4).max(1);
        let sim_costs = vec![total_sim / sim_tasks as f64; sim_tasks];
        let job2 = cluster.simulate_job(model, &sim_costs, num_reads, &[]);

        job1.total() + job2.total()
    }

    /// Simulated total runtime (seconds) of the *banded* hierarchical
    /// pipeline: sketch → band-signatures → candidate-dedup → verify.
    /// `bands` is the scheme's band count (shuffle fan-out per read)
    /// and `candidates` the surviving candidate-pair count — take it
    /// from a measured pruning ratio at a feasible size, it grows
    /// ~linearly in reads for fixed community structure.
    pub fn simulate_banded(
        &self,
        num_reads: u64,
        bands: usize,
        candidates: u64,
        nodes: usize,
        model: &JobCostModel,
    ) -> f64 {
        let cluster = ClusterSpec::m1_large(nodes);
        let clean = mrmc_mapreduce::chaos::RecoveryCounters::new;
        let map_tasks = ((num_reads / 65_536).max(1) as usize).max(cluster.map_slots() * 2);

        // Job 1: sketching (as in the dense pipeline).
        let total_sketch = num_reads as f64 * self.sketch_per_read;
        let sketch_costs = vec![total_sketch / map_tasks as f64; map_tasks];
        let sketch_bytes = (num_reads as f64 * self.shuffle_bytes_per_read) as u64;
        let job1 =
            cluster.simulate_job_bytes(model, &sketch_costs, num_reads, sketch_bytes, &[], clean());

        // Job 2: band signatures — `bands` narrow records per read
        // cross the shuffle (a (band, signature) key plus a read id,
        // ~16 B), in place of the dense stage's O(n²) compute.
        let sig_records = num_reads * bands.max(1) as u64;
        let total_sig = num_reads as f64 * self.sig_per_read;
        let sig_costs = vec![total_sig / map_tasks as f64; map_tasks];
        let job2 = cluster.simulate_job_bytes(
            model,
            &sig_costs,
            sig_records,
            sig_records * 16,
            &[],
            clean(),
        );

        // Job 3: candidate dedup — shuffle-bound, one narrow record
        // per bucket pair (duplicates across bands included; the
        // candidate count is the post-dedup floor, so this is a mild
        // underestimate biased *against* the banded path's win).
        let dedup_costs = vec![0.0; map_tasks];
        let job3 = cluster.simulate_job_bytes(
            model,
            &dedup_costs,
            candidates,
            candidates * 8,
            &[],
            clean(),
        );

        // Job 4: verification — the dense similarity kernel, but only
        // over candidates (map-only, no shuffle).
        let total_verify = candidates as f64 * self.sim_per_pair;
        let verify_tasks = (map_tasks * 4).max(1);
        let verify_costs = vec![total_verify / verify_tasks as f64; verify_tasks];
        let job4 = cluster.simulate_job(model, &verify_costs, 0, &[]);

        job1.total() + job2.total() + job3.total() + job4.total()
    }
}

/// One point of the Figure 2 grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Input reads.
    pub reads: u64,
    /// Simulated runtime in minutes.
    pub minutes: f64,
}

/// Evaluate the full grid the paper plots.
pub fn figure2_grid(
    calibration: &CostCalibration,
    nodes: &[usize],
    read_counts: &[u64],
    model: &JobCostModel,
) -> Vec<ScalingPoint> {
    let mut out = Vec::with_capacity(nodes.len() * read_counts.len());
    for &reads in read_counts {
        for &n in nodes {
            out.push(ScalingPoint {
                nodes: n,
                reads,
                minutes: calibration.simulate(reads, n, model) / 60.0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calib() -> CostCalibration {
        // Synthetic calibration resembling real measurements; tests of
        // `measure` itself are separate (it is timing-dependent).
        CostCalibration {
            sketch_per_read: 50e-6,
            sim_per_pair: 0.2e-6,
            sig_per_read: 1e-6,
            shuffle_bytes_per_read: 800.0,
        }
    }

    #[test]
    fn more_nodes_helps_large_inputs() {
        let model = JobCostModel::default();
        let c = calib();
        let t2 = c.simulate(1_000_000, 2, &model);
        let t12 = c.simulate(1_000_000, 12, &model);
        assert!(
            t12 < t2 * 0.5,
            "12 nodes ({t12:.0}s) should be well under half of 2 nodes ({t2:.0}s)"
        );
    }

    #[test]
    fn small_inputs_flat_in_nodes() {
        let model = JobCostModel::default();
        let c = calib();
        let t2 = c.simulate(1_000, 2, &model);
        let t12 = c.simulate(1_000, 12, &model);
        // Figure 2's 1000-read line: "no effect on run time of
        // increasing the number of nodes".
        assert!(
            (t2 - t12).abs() / t2 < 0.25,
            "t2 = {t2:.1}s, t12 = {t12:.1}s"
        );
    }

    #[test]
    fn runtime_monotone_in_input_size() {
        let model = JobCostModel::default();
        let c = calib();
        let mut prev = 0.0;
        for reads in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            let t = c.simulate(reads, 8, &model);
            assert!(t >= prev, "reads={reads}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn banded_simulation_beats_dense_at_scale() {
        let model = JobCostModel::default();
        let c = calib();
        let reads = 1_000_000u64;
        // ~50 surviving candidates per read — far denser than real 16S
        // corpora, still a ×10⁴ pruning of the 5·10¹¹ pair set.
        let banded = c.simulate_banded(reads, 3, reads * 50, 8, &model);
        let dense = c.simulate(reads, 8, &model);
        assert!(
            banded < dense * 0.1,
            "banded {banded:.0}s should be well under dense {dense:.0}s"
        );
        // At tiny sizes the fixed four-job overhead makes banding a
        // *loss* — the README's "when dense is still right".
        let banded_small = c.simulate_banded(1_000, 3, 1_000 * 50, 8, &model);
        let dense_small = c.simulate(1_000, 8, &model);
        assert!(banded_small > dense_small);
    }

    #[test]
    fn grid_covers_all_points() {
        let model = JobCostModel::default();
        let pts = figure2_grid(&calib(), &[2, 4, 8], &[1_000, 100_000], &model);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.minutes > 0.0));
    }

    #[test]
    fn measure_produces_positive_costs() {
        let cfg = MrMcConfig {
            kmer: 5,
            num_hashes: 16,
            ..Default::default()
        };
        let c = CostCalibration::measure(&cfg, 200);
        assert!(c.sketch_per_read > 0.0);
        assert!(c.sim_per_pair > 0.0);
        assert!(c.shuffle_bytes_per_read > 0.0);
    }
}
