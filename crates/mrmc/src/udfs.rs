//! The Pig UDFs of Algorithm 3, in Rust.
//!
//! These register into a [`mrmc_pig::UdfRegistry`] under the exact
//! names the paper's script uses (`FastaStorage`, `StringGenerator`,
//! `TranslateToKmer`, `CalculateMinwiseHash`,
//! `CalculatePairwiseSimilarity`, `AgglomerativeHierarchicalClustering`,
//! `GreedyClustering`), so [`algorithm3_script`] runs end-to-end on
//! the mini-Pig engine.
//!
//! One documented deviation from the paper's listing: Algorithm 3
//! computes minwise hashes with a bare `FOREACH` over *individual
//! k-mer rows*, which cannot see a whole sequence's k-mer set — the
//! published script only works because their Java UDF buffers state
//! across calls. Our dataflow makes the grouping explicit
//! (`G = GROUP C BY seqid2`) and hands `CalculateMinwiseHash` the
//! grouped bag, which is the semantically equivalent, side-effect-free
//! formulation.

use std::sync::Arc;

use mrmc_cluster::{agglomerative, greedy_cluster, CondensedMatrix, Linkage};
use mrmc_minhash::hash::UniversalHashFamily;
use mrmc_pig::batch::{BagCol, Bitmap, Column, ColumnBatch, VarBytesBuilder};
use mrmc_pig::udf::{BatchArg, BatchOut, BatchUdf, UdfError};
use mrmc_pig::{Udf, UdfRegistry, Value};
use mrmc_seqio::encode::KmerIter;
use mrmc_seqio::fasta::read_fasta_bytes;

/// Register every Algorithm 3 UDF, scalar implementations plus the
/// native batch kernels for the three hot per-row transforms
/// (everything else goes through the registry's scalar-lift adapter).
pub fn register_mrmc_udfs(registry: &mut UdfRegistry) {
    registry.register(Arc::new(FastaStorage));
    registry.register(Arc::new(StringGenerator));
    registry.register(Arc::new(TranslateToKmer));
    registry.register(Arc::new(CalculateMinwiseHash));
    registry.register(Arc::new(CalculatePairwiseSimilarity));
    registry.register(Arc::new(AgglomerativeHierarchicalClustering));
    registry.register(Arc::new(GreedyClustering));
    registry.register_batch(Arc::new(BatchStringGenerator));
    registry.register_batch(Arc::new(BatchTranslateToKmer));
    registry.register_batch(Arc::new(BatchCalculateMinwiseHash));
}

/// Our canonical version of the paper's Algorithm 3 script.
/// Parameters: `$INPUT`, `$KMER`, `$NUMHASH`, `$DIV`, `$LINK`,
/// `$CUTOFF`, `$OUTPUT1` (hierarchical), `$OUTPUT2` (greedy).
pub fn algorithm3_script() -> &'static str {
    r#"
A = LOAD '$INPUT' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, $KMER)) AS (seqkmer:long, seqid2:chararray);
G = GROUP C BY seqid2;
E = FOREACH G GENERATE FLATTEN(CalculateMinwiseHash(C, $NUMHASH, $DIV)) AS (minwise:bag, seqid3:chararray);
I = GROUP E ALL;
J = FOREACH E GENERATE FLATTEN(CalculatePairwiseSimilarity(minwise, seqid3, I.E)) AS (seqid4:chararray, simrow:bag);
II = GROUP J ALL;
K = FOREACH II GENERATE FLATTEN(AgglomerativeHierarchicalClustering(J, '$LINK', $NUMHASH, $CUTOFF)) AS (seqid5:chararray, clusterlabel:int);
L = FOREACH I GENERATE FLATTEN(GreedyClustering(E, $NUMHASH, $CUTOFF)) AS (seqid6:chararray, clusterlabel2:int);
STORE K INTO '$OUTPUT1';
STORE L INTO '$OUTPUT2';
"#
}

/// Suggest `$CUTOFF` for the Pig path. The Pig UDF family hashes into
/// `Z_p` without the `mod m` range compression of Eq. 5 (see
/// [`family_for`]), so its similarity estimates sit slightly *below*
/// the native path's (which inherits Eq. 5's collision bias at small
/// `4^k`); the threshold must be chosen on the same scale that the
/// clustering UDFs will see.
pub fn suggest_theta_pig(
    reads: &[mrmc_seqio::SeqRecord],
    kmer: usize,
    numhash: usize,
    div: u64,
    sample: usize,
) -> f64 {
    if reads.len() < 2 {
        return 0.5;
    }
    let sample = sample.clamp(2, reads.len());
    let stride = (reads.len() / sample).max(1);
    let family = family_for(numhash, div);
    let sketches: Vec<Vec<u64>> = reads
        .iter()
        .step_by(stride)
        .take(sample)
        .map(|r| {
            let mut mins = vec![u64::MAX; numhash];
            if let Ok(iter) = KmerIter::new(&r.seq, kmer) {
                for km in iter {
                    for (i, slot) in mins.iter_mut().enumerate() {
                        let h = family.hash(i, km);
                        if h < *slot {
                            *slot = h;
                        }
                    }
                }
            }
            mins
        })
        .collect();
    let mut sims = Vec::with_capacity(sketches.len() * (sketches.len() - 1) / 2);
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            sims.push(raw_similarity(&sketches[i], &sketches[j]));
        }
    }
    crate::threshold::otsu_threshold(&sims)
}

fn arg_i64(udf: &str, args: &[Value], idx: usize, what: &str) -> Result<i64, UdfError> {
    args.get(idx)
        .and_then(Value::as_i64)
        .ok_or_else(|| UdfError::new(udf, format!("argument {idx} must be {what} (integer)")))
}

fn arg_f64(udf: &str, args: &[Value], idx: usize, what: &str) -> Result<f64, UdfError> {
    args.get(idx)
        .and_then(Value::as_f64)
        .ok_or_else(|| UdfError::new(udf, format!("argument {idx} must be {what} (number)")))
}

fn arg_str<'a>(udf: &str, args: &'a [Value], idx: usize, what: &str) -> Result<&'a str, UdfError> {
    args.get(idx)
        .and_then(Value::as_str)
        .ok_or_else(|| UdfError::new(udf, format!("argument {idx} must be {what} (chararray)")))
}

fn arg_bag<'a>(
    udf: &str,
    args: &'a [Value],
    idx: usize,
    what: &str,
) -> Result<&'a [Value], UdfError> {
    args.get(idx)
        .and_then(Value::as_bag)
        .ok_or_else(|| UdfError::new(udf, format!("argument {idx} must be {what} (bag)")))
}

/// `FastaStorage` — the loader: file bytes → bag of
/// `(readid, d, seq, header)` tuples (d is the paper's direction
/// field; always 0 here).
pub struct FastaStorage;
impl Udf for FastaStorage {
    fn name(&self) -> &str {
        "FastaStorage"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let bytes = args
            .first()
            .and_then(Value::as_bytes)
            .ok_or_else(|| UdfError::new("FastaStorage", "expected file bytes"))?;
        let records =
            read_fasta_bytes(bytes).map_err(|e| UdfError::new("FastaStorage", e.to_string()))?;
        Ok(Value::bag(
            records
                .into_iter()
                .map(|r| {
                    Value::tuple([
                        Value::CharArray(r.id),
                        Value::Int(0),
                        Value::ByteArray(r.seq.into()),
                        Value::CharArray(r.description),
                    ])
                })
                .collect::<Vec<_>>(),
        ))
    }
}

/// `StringGenerator(seq, readid)` — normalizes the DNA alphabet
/// (upper-case, `U`→`T`) and passes the id through; the integer
/// encoding itself happens inside `TranslateToKmer`, which packs
/// each k-mer into a long.
pub struct StringGenerator;
impl Udf for StringGenerator {
    fn name(&self) -> &str {
        "StringGenerator"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let seq = args
            .first()
            .and_then(Value::as_bytes)
            .ok_or_else(|| UdfError::new("StringGenerator", "argument 0 must be the sequence"))?;
        let id = arg_str("StringGenerator", args, 1, "the read id")?;
        let norm: String = seq
            .iter()
            .map(|&c| match c.to_ascii_uppercase() {
                b'U' => 'T',
                up => up as char,
            })
            .collect();
        Ok(Value::tuple([
            Value::CharArray(norm),
            Value::CharArray(id.to_string()),
        ]))
    }
}

/// `TranslateToKmer(seq, seqid, k)` — bag of `(kmer:long, seqid)`.
pub struct TranslateToKmer;
impl Udf for TranslateToKmer {
    fn name(&self) -> &str {
        "TranslateToKmer"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let seq = arg_str("TranslateToKmer", args, 0, "the sequence")?;
        let id = arg_str("TranslateToKmer", args, 1, "the read id")?;
        let k = arg_i64("TranslateToKmer", args, 2, "the k-mer size")? as usize;
        let iter = KmerIter::new(seq.as_bytes(), k)
            .map_err(|e| UdfError::new("TranslateToKmer", e.to_string()))?;
        Ok(Value::bag(
            iter.map(|km| Value::tuple([Value::Long(km as i64), Value::CharArray(id.to_string())]))
                .collect::<Vec<_>>(),
        ))
    }
}

/// Build the hash family for a given `$NUMHASH`/`$DIV`. The prime
/// `$DIV` doubles as the deterministic parameter seed, mirroring how
/// the paper's UDF takes only those two knobs. `(a·x + b) mod p` is a
/// bijection on `Z_p`, so the extra `mod m` range-compression of
/// Eq. 5 is unnecessary here (and skipping it removes avoidable
/// collisions).
fn family_for(numhash: usize, div: u64) -> UniversalHashFamily {
    UniversalHashFamily::new(numhash, div, div)
}

/// `CalculateMinwiseHash(kmer_bag, numhash, div)` — the grouped bag of
/// `(kmer, seqid)` rows for one sequence → `(sketch:bag(long), seqid)`.
pub struct CalculateMinwiseHash;
impl Udf for CalculateMinwiseHash {
    fn name(&self) -> &str {
        "CalculateMinwiseHash"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let rows = arg_bag("CalculateMinwiseHash", args, 0, "the grouped k-mer rows")?;
        let numhash = arg_i64("CalculateMinwiseHash", args, 1, "$NUMHASH")? as usize;
        let div = arg_i64("CalculateMinwiseHash", args, 2, "$DIV")? as u64;
        if numhash == 0 {
            return Err(UdfError::new(
                "CalculateMinwiseHash",
                "$NUMHASH must be ≥ 1",
            ));
        }
        let family = family_for(numhash, div);

        let mut seqid: Option<String> = None;
        let mut mins = vec![u64::MAX; numhash];
        for row in rows {
            let t = row
                .as_tuple()
                .ok_or_else(|| UdfError::new("CalculateMinwiseHash", "rows must be tuples"))?;
            let kmer = t.first().and_then(Value::as_i64).ok_or_else(|| {
                UdfError::new("CalculateMinwiseHash", "row field 0 must be the k-mer")
            })? as u64;
            if seqid.is_none() {
                seqid = t.get(1).and_then(Value::as_str).map(str::to_string);
            }
            for (i, slot) in mins.iter_mut().enumerate() {
                let h = family.hash(i, kmer);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        let seqid =
            seqid.ok_or_else(|| UdfError::new("CalculateMinwiseHash", "empty k-mer group"))?;
        Ok(Value::tuple([
            Value::bag(
                mins.into_iter()
                    .map(|v| Value::Long(v as i64))
                    .collect::<Vec<_>>(),
            ),
            Value::CharArray(seqid),
        ]))
    }
}

/// Decode a sketch bag back into minwise values.
fn sketch_values(udf: &str, v: &Value) -> Result<Vec<u64>, UdfError> {
    v.as_bag()
        .ok_or_else(|| UdfError::new(udf, "sketch must be a bag of longs"))?
        .iter()
        .map(|x| {
            x.as_i64()
                .map(|v| v as u64)
                .ok_or_else(|| UdfError::new(udf, "sketch entries must be longs"))
        })
        .collect()
}

/// Positional agreement of two raw sketches.
fn raw_similarity(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() || a.len() != b.len() {
        return 0.0;
    }
    let agree = a
        .iter()
        .zip(b)
        .filter(|(x, y)| x == y && **x != u64::MAX)
        .count();
    agree as f64 / a.len() as f64
}

/// `CalculatePairwiseSimilarity(sketch, seqid, all_rows)` — one row of
/// the similarity matrix: `(seqid, bag of (other_seqid, sim))`. The
/// `all_rows` argument is the scalar `I.E` reference — the row-wise
/// partition of Fig. 1: every invocation sees the whole relation but
/// computes only its own row.
pub struct CalculatePairwiseSimilarity;
impl Udf for CalculatePairwiseSimilarity {
    fn name(&self) -> &str {
        "CalculatePairwiseSimilarity"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let me = sketch_values("CalculatePairwiseSimilarity", &args[0])?;
        let my_id = arg_str("CalculatePairwiseSimilarity", args, 1, "the seqid")?;
        let all = arg_bag("CalculatePairwiseSimilarity", args, 2, "the full relation")?;
        let mut row = Vec::with_capacity(all.len().saturating_sub(1));
        for other in all {
            let t = other.as_tuple().ok_or_else(|| {
                UdfError::new(
                    "CalculatePairwiseSimilarity",
                    "relation rows must be tuples",
                )
            })?;
            let other_id = t
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| UdfError::new("CalculatePairwiseSimilarity", "missing seqid"))?;
            if other_id == my_id {
                continue;
            }
            let vals = sketch_values("CalculatePairwiseSimilarity", &t[0])?;
            row.push(Value::tuple([
                Value::CharArray(other_id.to_string()),
                Value::Double(raw_similarity(&me, &vals)),
            ]));
        }
        Ok(Value::tuple([
            Value::CharArray(my_id.to_string()),
            Value::bag(row),
        ]))
    }
}

/// Rebuild a dense id-indexed matrix from `(seqid, [(other, sim)])`
/// rows, returning the ids in index order.
fn matrix_from_rows(udf: &str, rows: &[Value]) -> Result<(Vec<String>, CondensedMatrix), UdfError> {
    let mut ids: Vec<String> = Vec::with_capacity(rows.len());
    for row in rows {
        let t = row
            .as_tuple()
            .ok_or_else(|| UdfError::new(udf, "rows must be tuples"))?;
        let id = t
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| UdfError::new(udf, "row field 0 must be the seqid"))?;
        ids.push(id.to_string());
    }
    let index_of = |id: &str| ids.iter().position(|x| x == id);
    let mut matrix = CondensedMatrix::build(ids.len(), |_, _| 0.0);
    for (i, row) in rows.iter().enumerate() {
        let t = row.as_tuple().expect("checked above");
        let entries = t
            .get(1)
            .and_then(Value::as_bag)
            .ok_or_else(|| UdfError::new(udf, "row field 1 must be the similarity bag"))?;
        for e in entries {
            let et = e
                .as_tuple()
                .ok_or_else(|| UdfError::new(udf, "similarity entries must be tuples"))?;
            let other = et
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| UdfError::new(udf, "entry field 0 must be a seqid"))?;
            let sim = et
                .get(1)
                .and_then(Value::as_f64)
                .ok_or_else(|| UdfError::new(udf, "entry field 1 must be the similarity"))?;
            if let Some(j) = index_of(other) {
                if i != j {
                    matrix.set(i, j, sim);
                }
            }
        }
    }
    Ok((ids, matrix))
}

/// `AgglomerativeHierarchicalClustering(rows, link, numhash, cutoff)`
/// — bag of `(seqid, clusterlabel)`.
pub struct AgglomerativeHierarchicalClustering;
impl Udf for AgglomerativeHierarchicalClustering {
    fn name(&self) -> &str {
        "AgglomerativeHierarchicalClustering"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let rows = arg_bag(self.name(), args, 0, "the similarity rows")?;
        let link_str = arg_str(self.name(), args, 1, "$LINK")?;
        let _numhash = arg_i64(self.name(), args, 2, "$NUMHASH")?;
        let cutoff = arg_f64(self.name(), args, 3, "$CUTOFF")?;
        let linkage: Linkage = link_str
            .parse()
            .map_err(|e: String| UdfError::new(self.name(), e))?;
        let (ids, matrix) = matrix_from_rows(self.name(), rows)?;
        let (assignment, _) = agglomerative(&matrix, linkage, cutoff);
        Ok(Value::bag(
            ids.iter()
                .enumerate()
                .map(|(i, id)| {
                    Value::tuple([
                        Value::CharArray(id.clone()),
                        Value::Int(assignment.label(i) as i32),
                    ])
                })
                .collect::<Vec<_>>(),
        ))
    }
}

/// `GreedyClustering(sketch_rows, numhash, cutoff)` — Algorithm 1 on
/// the grouped sketch relation; bag of `(seqid, clusterlabel)`.
pub struct GreedyClustering;
impl Udf for GreedyClustering {
    fn name(&self) -> &str {
        "GreedyClustering"
    }
    fn exec(&self, args: &[Value]) -> Result<Value, UdfError> {
        let rows = arg_bag(self.name(), args, 0, "the sketch rows")?;
        let _numhash = arg_i64(self.name(), args, 1, "$NUMHASH")?;
        let cutoff = arg_f64(self.name(), args, 2, "$CUTOFF")?;
        let mut ids = Vec::with_capacity(rows.len());
        let mut sketches = Vec::with_capacity(rows.len());
        for row in rows {
            let t = row
                .as_tuple()
                .ok_or_else(|| UdfError::new(self.name(), "rows must be tuples"))?;
            sketches.push(sketch_values(self.name(), &t[0])?);
            let id = t
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| UdfError::new(self.name(), "missing seqid"))?;
            ids.push(id.to_string());
        }
        let assignment = greedy_cluster(sketches.len(), cutoff, |i, j| {
            raw_similarity(&sketches[i], &sketches[j])
        })
        .compact();
        Ok(Value::bag(
            ids.iter()
                .enumerate()
                .map(|(i, id)| {
                    Value::tuple([
                        Value::CharArray(id.clone()),
                        Value::Int(assignment.label(i) as i32),
                    ])
                })
                .collect::<Vec<_>>(),
        ))
    }
}

// ------------------------------------------------- native batch kernels
//
// Each kernel computes the exact per-row output of its scalar twin,
// working directly on column storage (packed byte buffers, offset
// vectors) instead of boxed `Value` trees. Any argument layout the
// kernel does not vectorize falls back to the scalar implementation
// row by row, so the batch path is bit-identical by construction.

/// True when every row of the window `start..start + len` is valid.
fn window_valid(validity: &Option<Bitmap>, start: usize, len: usize) -> bool {
    validity
        .as_ref()
        .is_none_or(|v| (start..start + len).all(|i| v.get(i)))
}

/// Row-at-a-time fallback (mirrors the registry's scalar adapter).
fn scalar_rows(udf: &dyn Udf, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
    let mut buf: Vec<Value> = args
        .iter()
        .map(|a| a.as_scalar().cloned().unwrap_or(Value::Null))
        .collect();
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        for (slot, arg) in buf.iter_mut().zip(args) {
            if let Some((col, start, _)) = arg.as_column() {
                *slot = col.value_at(start + i);
            }
        }
        out.push(udf.exec(&buf)?);
    }
    Ok(BatchOut::Rows(out))
}

/// A chararray argument window usable byte-wise: `(bytes of row i)`.
/// Returns `None` when the layout needs the scalar fallback.
enum StrArg<'a> {
    Col {
        data: &'a mrmc_pig::batch::VarBytes,
        start: usize,
    },
    Broadcast(&'a str),
}

impl StrArg<'_> {
    fn get(&self, i: usize) -> &[u8] {
        match self {
            StrArg::Col { data, start } => data.get(start + i),
            StrArg::Broadcast(s) => s.as_bytes(),
        }
    }
}

fn str_arg<'a>(arg: &BatchArg<'a>, len: usize) -> Option<StrArg<'a>> {
    match arg {
        BatchArg::Column { col, start, .. } => match col {
            Column::Str { data, validity } if window_valid(validity, *start, len) => {
                Some(StrArg::Col {
                    data,
                    start: *start,
                })
            }
            _ => None,
        },
        BatchArg::Scalar { value, .. } => value.as_str().map(StrArg::Broadcast),
    }
}

/// Normalize one DNA byte the way `StringGenerator` does.
#[inline]
fn norm_base(c: u8) -> u8 {
    let up = c.to_ascii_uppercase();
    if up == b'U' {
        b'T'
    } else {
        up
    }
}

/// Native `StringGenerator`: normalizes sequences in one pass over
/// the packed byte buffer and re-emits the id column, producing a
/// columnar two-field tuple (no per-row `String`/`Vec` boxing).
pub struct BatchStringGenerator;
impl BatchUdf for BatchStringGenerator {
    fn name(&self) -> &str {
        "StringGenerator"
    }
    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
        // Sequences arrive as bytearray or chararray columns.
        let seq: Option<(&mrmc_pig::batch::VarBytes, usize)> = match args.first() {
            Some(BatchArg::Column { col, start, .. }) => match col {
                Column::Bin { data, validity } | Column::Str { data, validity }
                    if window_valid(validity, *start, rows) =>
                {
                    Some((data, *start))
                }
                _ => None,
            },
            _ => None,
        };
        let (Some((seq, seq_start)), Some(ids)) = (seq, args.get(1).and_then(|a| str_arg(a, rows)))
        else {
            return scalar_rows(&StringGenerator, args, rows);
        };
        let mut norm = VarBytesBuilder::with_capacity(rows);
        let mut out_ids = VarBytesBuilder::with_capacity(rows);
        let mut buf = Vec::new();
        for i in 0..rows {
            let s = seq.get(seq_start + i);
            buf.clear();
            buf.extend(s.iter().map(|&c| norm_base(c)));
            norm.push(&buf);
            out_ids.push(ids.get(i));
        }
        Ok(BatchOut::Tup(ColumnBatch::from_cols(
            vec![
                Column::Str {
                    data: norm.finish(),
                    validity: None,
                },
                Column::Str {
                    data: out_ids.finish(),
                    validity: None,
                },
            ],
            rows,
        )))
    }
}

/// Native `TranslateToKmer`: writes every row's k-mers straight into
/// one packed `long` column and builds the `(kmer, seqid)` bag column
/// over it — no per-k-mer tuple or bag allocation.
pub struct BatchTranslateToKmer;
impl BatchUdf for BatchTranslateToKmer {
    fn name(&self) -> &str {
        "TranslateToKmer"
    }
    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
        let (Some(seq), Some(ids), Some(k)) = (
            args.first().and_then(|a| str_arg(a, rows)),
            args.get(1).and_then(|a| str_arg(a, rows)),
            args.get(2)
                .and_then(BatchArg::as_scalar)
                .and_then(Value::as_i64),
        ) else {
            return scalar_rows(&TranslateToKmer, args, rows);
        };
        let k = k as usize;
        let mut offsets: Vec<u32> = Vec::with_capacity(rows + 1);
        offsets.push(0);
        let mut kmers: Vec<i64> = Vec::new();
        let mut out_ids = VarBytesBuilder::with_capacity(rows * 8);
        for i in 0..rows {
            let iter = KmerIter::new(seq.get(i), k)
                .map_err(|e| UdfError::new("TranslateToKmer", e.to_string()))?;
            let id = ids.get(i);
            for km in iter {
                kmers.push(km as i64);
                out_ids.push(id);
            }
            offsets.push(kmers.len() as u32);
        }
        let n = kmers.len();
        let child = ColumnBatch::from_cols(
            vec![
                Column::Long {
                    data: kmers,
                    validity: None,
                },
                Column::Str {
                    data: out_ids.finish(),
                    validity: None,
                },
            ],
            n,
        );
        Ok(BatchOut::Col(Column::Bag(BagCol::new(
            offsets, child, true, None,
        ))))
    }
}

/// Native `CalculateMinwiseHash`: reads each group's k-mers straight
/// out of the grouped bag column's packed `long` child (no `Value`
/// materialization of the k-mer rows at all) and emits the sketches
/// as one packed bag column.
pub struct BatchCalculateMinwiseHash;
impl BatchUdf for BatchCalculateMinwiseHash {
    fn name(&self) -> &str {
        "CalculateMinwiseHash"
    }
    fn eval_batch(&self, args: &[BatchArg<'_>], rows: usize) -> Result<BatchOut, UdfError> {
        let fallback = || scalar_rows(&CalculateMinwiseHash, args, rows);
        // The grouped `(kmer, seqid)` bag column.
        let Some(BatchArg::Column { col, start, .. }) = args.first() else {
            return fallback();
        };
        let Column::Bag(bag) = col else {
            return fallback();
        };
        let (Some(numhash), Some(div)) = (
            args.get(1)
                .and_then(BatchArg::as_scalar)
                .and_then(Value::as_i64),
            args.get(2)
                .and_then(BatchArg::as_scalar)
                .and_then(Value::as_i64),
        ) else {
            return fallback();
        };
        if numhash < 1
            || !bag.tuple_elems
            || bag.elems.num_cols() < 2
            || !window_valid(&bag.validity, *start, rows)
            || (0..rows).any(|i| bag.bag_len(start + i) == 0)
        {
            return fallback();
        }
        let elem_lo = bag.offsets[*start] as usize;
        let elem_hi = bag.offsets[start + rows] as usize;
        let (kmer_col, id_col) = (bag.elems.col(0), bag.elems.col(1));
        let Column::Long {
            data: kmers,
            validity: kv,
        } = kmer_col
        else {
            return fallback();
        };
        let Column::Str {
            data: ids,
            validity: iv,
        } = id_col
        else {
            return fallback();
        };
        if !window_valid(kv, elem_lo, elem_hi - elem_lo)
            || !window_valid(iv, elem_lo, elem_hi - elem_lo)
        {
            return fallback();
        }
        let numhash = numhash as usize;
        let family = family_for(numhash, div as u64);
        let mut sketch: Vec<i64> = Vec::with_capacity(rows * numhash);
        let mut offsets: Vec<u32> = Vec::with_capacity(rows + 1);
        offsets.push(0);
        let mut out_ids = VarBytesBuilder::with_capacity(rows);
        let mut mins = vec![u64::MAX; numhash];
        for i in 0..rows {
            let (lo, hi) = (
                bag.offsets[start + i] as usize,
                bag.offsets[start + i + 1] as usize,
            );
            mins.iter_mut().for_each(|m| *m = u64::MAX);
            for &km in &kmers[lo..hi] {
                let km = km as u64;
                for (h, slot) in mins.iter_mut().enumerate() {
                    let v = family.hash(h, km);
                    if v < *slot {
                        *slot = v;
                    }
                }
            }
            sketch.extend(mins.iter().map(|&v| v as i64));
            offsets.push(sketch.len() as u32);
            out_ids.push(ids.get(lo));
        }
        let n = sketch.len();
        let sketch_col = Column::Bag(BagCol::new(
            offsets,
            ColumnBatch::single(Column::Long {
                data: sketch,
                validity: None,
            }),
            false,
            None,
        ));
        debug_assert_eq!(n, rows * numhash);
        Ok(BatchOut::Tup(ColumnBatch::from_cols(
            vec![
                sketch_col,
                Column::Str {
                    data: out_ids.finish(),
                    validity: None,
                },
            ],
            rows,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mrmc_mapreduce::dfs::{Dfs, DfsConfig};
    use mrmc_pig::{parse_script, PigRunner};
    use std::collections::HashMap;

    fn registry() -> UdfRegistry {
        let mut r = UdfRegistry::with_builtins();
        register_mrmc_udfs(&mut r);
        r
    }

    #[test]
    fn fasta_storage_loads_records() {
        let out = FastaStorage
            .exec(&[Value::ByteArray(Bytes::from_static(
                b">r1 desc\nACGT\n>r2\nTT\n",
            ))])
            .unwrap();
        let bag = out.as_bag().unwrap();
        assert_eq!(bag.len(), 2);
        let t = bag[0].as_tuple().unwrap();
        assert_eq!(t[0].as_str(), Some("r1"));
        assert_eq!(t[2].as_bytes(), Some(&b"ACGT"[..]));
        assert_eq!(t[3].as_str(), Some("desc"));
    }

    #[test]
    fn string_generator_normalizes() {
        let out = StringGenerator
            .exec(&[
                Value::ByteArray(Bytes::from_static(b"acgu")),
                Value::CharArray("r1".into()),
            ])
            .unwrap();
        let t = out.as_tuple().unwrap();
        assert_eq!(t[0].as_str(), Some("ACGT"));
    }

    #[test]
    fn translate_to_kmer_counts() {
        let out = TranslateToKmer
            .exec(&[
                Value::CharArray("ACGTT".into()),
                Value::CharArray("r1".into()),
                Value::Long(3),
            ])
            .unwrap();
        assert_eq!(out.as_bag().unwrap().len(), 3); // 5 − 3 + 1
    }

    #[test]
    fn minwise_hash_deterministic_and_sized() {
        let rows = Value::bag(vec![
            Value::tuple([Value::Long(5), Value::CharArray("r1".into())]),
            Value::tuple([Value::Long(9), Value::CharArray("r1".into())]),
        ]);
        let args = [rows, Value::Long(8), Value::Long(1_048_583)];
        let a = CalculateMinwiseHash.exec(&args).unwrap();
        let b = CalculateMinwiseHash.exec(&args).unwrap();
        assert_eq!(a, b);
        let t = a.as_tuple().unwrap();
        assert_eq!(t[0].as_bag().unwrap().len(), 8);
        assert_eq!(t[1].as_str(), Some("r1"));
    }

    #[test]
    fn udf_arg_errors_are_informative() {
        let err = CalculateMinwiseHash
            .exec(&[Value::Int(1), Value::Long(8), Value::Long(11)])
            .unwrap_err();
        assert!(err.message.contains("bag"), "{err}");
        let err = TranslateToKmer.exec(&[]).unwrap_err();
        assert!(err.message.contains("argument 0"), "{err}");
    }

    /// End-to-end: the Algorithm 3 script on a small FASTA with two
    /// obvious groups must produce two clusters in both outputs.
    #[test]
    fn algorithm3_script_end_to_end() {
        let dfs = std::sync::Arc::new(
            Dfs::new(DfsConfig {
                block_size: 4096,
                replication: 1,
                nodes: 2,
            })
            .unwrap(),
        );
        let fasta = b">a1\nACGTACGTACGTACGTACGT\n>a2\nACGTACGTACGTACGTACGT\n\
                      >b1\nGGTTCCAAGGTTCCAAGGTT\n>b2\nGGTTCCAAGGTTCCAAGGTT\n";
        dfs.put("/in.fa", Bytes::from_static(fasta), false).unwrap();

        let mut params = HashMap::new();
        for (k, v) in [
            ("INPUT", "/in.fa"),
            ("KMER", "5"),
            ("NUMHASH", "32"),
            ("DIV", "1048583"),
            ("LINK", "average"),
            ("CUTOFF", "0.9"),
            ("OUTPUT1", "/out/hier"),
            ("OUTPUT2", "/out/greedy"),
        ] {
            params.insert(k.to_string(), v.to_string());
        }
        let script = parse_script(algorithm3_script(), &params).unwrap();
        let runner = PigRunner::new(std::sync::Arc::clone(&dfs), registry());
        let report = runner.run(&script).unwrap();
        assert_eq!(report.stored, vec!["/out/hier", "/out/greedy"]);

        for path in ["/out/hier", "/out/greedy"] {
            let text = String::from_utf8(dfs.read(path).unwrap().to_vec()).unwrap();
            // Rows like "(a1,0)"; a-reads share a label, b-reads share
            // a different one.
            let mut label_of = HashMap::new();
            for line in text.lines() {
                let inner = line.trim_start_matches('(').trim_end_matches(')');
                let (id, label) = inner.split_once(',').expect("two fields");
                label_of.insert(id.to_string(), label.to_string());
            }
            assert_eq!(label_of.len(), 4, "{path}: {text}");
            assert_eq!(label_of["a1"], label_of["a2"], "{path}");
            assert_eq!(label_of["b1"], label_of["b2"], "{path}");
            assert_ne!(label_of["a1"], label_of["b1"], "{path}");
        }
    }

    /// Every native batch kernel must produce, per row, exactly the
    /// scalar UDF's output (the BatchUdf contract).
    #[test]
    fn batch_kernels_match_scalar_udfs() {
        use mrmc_pig::batch::Column;

        // StringGenerator over a Bin sequence column + Str id column.
        let seqs = Column::from_values(vec![
            Value::ByteArray(Bytes::from_static(b"acgu")),
            Value::ByteArray(Bytes::from_static(b"TTgA")),
            Value::ByteArray(Bytes::from_static(b"")),
        ]);
        let ids = Column::from_values(vec![
            Value::CharArray("r1".into()),
            Value::CharArray("r2".into()),
            Value::CharArray("r3".into()),
        ]);
        let args = [
            BatchArg::Column {
                col: &seqs,
                start: 0,
                len: 3,
            },
            BatchArg::Column {
                col: &ids,
                start: 0,
                len: 3,
            },
        ];
        let out = BatchStringGenerator.eval_batch(&args, 3).unwrap();
        let BatchOut::Tup(batch) = out else {
            panic!("expected columnar tuple output")
        };
        for i in 0..3 {
            let scalar = StringGenerator
                .exec(&[seqs.value_at(i), ids.value_at(i)])
                .unwrap();
            assert_eq!(batch.row_value(i), scalar);
        }

        // TranslateToKmer over a Str column; compare the bags.
        let seqs = Column::from_values(vec![
            Value::CharArray("ACGTT".into()),
            Value::CharArray("GGGG".into()),
        ]);
        let ids = Column::from_values(vec![
            Value::CharArray("a".into()),
            Value::CharArray("b".into()),
        ]);
        let k = Value::Long(3);
        let args = [
            BatchArg::Column {
                col: &seqs,
                start: 0,
                len: 2,
            },
            BatchArg::Column {
                col: &ids,
                start: 0,
                len: 2,
            },
            BatchArg::Scalar { value: &k, len: 2 },
        ];
        let out = BatchTranslateToKmer.eval_batch(&args, 2).unwrap();
        let BatchOut::Col(col) = out else {
            panic!("expected bag column output")
        };
        for i in 0..2 {
            let scalar = TranslateToKmer
                .exec(&[seqs.value_at(i), ids.value_at(i), Value::Long(3)])
                .unwrap();
            assert_eq!(col.value_at(i), scalar);
        }

        // CalculateMinwiseHash over the grouped bag column exactly as
        // the TranslateToKmer kernel shapes it.
        let grouped = Column::from_values(vec![
            Value::bag(vec![
                Value::tuple([Value::Long(5), Value::CharArray("a".into())]),
                Value::tuple([Value::Long(9), Value::CharArray("a".into())]),
            ]),
            Value::bag(vec![Value::tuple([
                Value::Long(7),
                Value::CharArray("b".into()),
            ])]),
        ]);
        assert!(
            matches!(grouped, Column::Bag(_)),
            "test shapes a bag column"
        );
        let (nh, div) = (Value::Long(8), Value::Long(1_048_583));
        let args = [
            BatchArg::Column {
                col: &grouped,
                start: 0,
                len: 2,
            },
            BatchArg::Scalar { value: &nh, len: 2 },
            BatchArg::Scalar {
                value: &div,
                len: 2,
            },
        ];
        let out = BatchCalculateMinwiseHash.eval_batch(&args, 2).unwrap();
        let BatchOut::Tup(batch) = out else {
            panic!("expected columnar tuple output")
        };
        for i in 0..2 {
            let scalar = CalculateMinwiseHash
                .exec(&[grouped.value_at(i), Value::Long(8), Value::Long(1_048_583)])
                .unwrap();
            assert_eq!(batch.row_value(i), scalar);
        }
    }

    /// The full Algorithm 3 script must store byte-identical outputs
    /// on the row and columnar engines.
    #[test]
    fn algorithm3_row_and_columnar_engines_agree() {
        use mrmc_pig::exec::PigEngine;

        let fasta = b">a1\nACGTACGTACGTACGTACGT\n>a2\nACGTACGTACGTACGTACGT\n\
                      >b1\nGGTTCCAAGGTTCCAAGGTT\n>b2\nGGTTCCAAGGTTCCAAGGTT\n\
                      >c1\nTTTTAAAACCCCGGGGTTTT\n";
        let mut params = HashMap::new();
        for (k, v) in [
            ("INPUT", "/in.fa"),
            ("KMER", "5"),
            ("NUMHASH", "32"),
            ("DIV", "1048583"),
            ("LINK", "average"),
            ("CUTOFF", "0.9"),
            ("OUTPUT1", "/out/hier"),
            ("OUTPUT2", "/out/greedy"),
        ] {
            params.insert(k.to_string(), v.to_string());
        }
        let script = parse_script(algorithm3_script(), &params).unwrap();

        let mut outputs: Vec<Vec<u8>> = Vec::new();
        for engine in [PigEngine::Row, PigEngine::Columnar] {
            let dfs = std::sync::Arc::new(
                Dfs::new(DfsConfig {
                    block_size: 4096,
                    replication: 1,
                    nodes: 2,
                })
                .unwrap(),
            );
            dfs.put("/in.fa", Bytes::from_static(fasta), false).unwrap();
            let runner =
                PigRunner::new(std::sync::Arc::clone(&dfs), registry()).with_engine(engine);
            runner.run(&script).unwrap();
            let mut blob = Vec::new();
            for path in ["/out/hier", "/out/greedy"] {
                blob.extend_from_slice(&dfs.read(path).unwrap());
            }
            outputs.push(blob);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "row and columnar engines diverged on Algorithm 3"
        );
    }

    #[test]
    fn pairwise_similarity_row_excludes_self() {
        let sk = |vals: &[i64], id: &str| {
            Value::tuple([
                Value::bag(vals.iter().map(|&v| Value::Long(v)).collect::<Vec<_>>()),
                Value::CharArray(id.into()),
            ])
        };
        let all = Value::bag(vec![sk(&[1, 2], "x"), sk(&[1, 2], "y"), sk(&[9, 9], "z")]);
        let out = CalculatePairwiseSimilarity
            .exec(&[
                Value::bag(vec![Value::Long(1), Value::Long(2)]),
                Value::CharArray("x".into()),
                all,
            ])
            .unwrap();
        let t = out.as_tuple().unwrap();
        let row = t[1].as_bag().unwrap();
        assert_eq!(row.len(), 2); // y and z, not x
        let y = row[0].as_tuple().unwrap();
        assert_eq!(y[0].as_str(), Some("y"));
        assert_eq!(y[1].as_f64(), Some(1.0));
    }
}
