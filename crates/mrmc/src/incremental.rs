//! Streaming (incremental) greedy clustering.
//!
//! The paper motivates binning as "a pre-processing step … within
//! several workflows that analyze only cluster representatives"
//! (§I). Those workflows receive reads continuously; this module keeps
//! Algorithm 1's representative rule but processes reads *one at a
//! time*: each new read joins the first existing cluster whose
//! representative sketch clears θ, or founds a new cluster. Seeding
//! from a finished batch run makes it the "assign new data to
//! yesterday's clusters" operation.

use mrmc_cluster::ClusterAssignment;
use mrmc_minhash::{MinHasher, Sketch};
use mrmc_seqio::{SeqIoError, SeqRecord};

use crate::config::MrMcConfig;
use crate::pipeline::MrMcResult;
use crate::stages::sketch_similarity;

/// Streaming greedy clusterer over minhash sketches.
#[derive(Debug, Clone)]
pub struct IncrementalClusterer {
    config: MrMcConfig,
    hasher: MinHasher,
    /// Representative sketch per cluster, indexed by label.
    representatives: Vec<Sketch>,
    /// Label assigned to each pushed read, in push order.
    labels: Vec<usize>,
}

impl IncrementalClusterer {
    /// Empty clusterer (panics on invalid config, like [`crate::MrMcMinH`]).
    pub fn new(config: MrMcConfig) -> IncrementalClusterer {
        if let Err(e) = config.validate() {
            panic!("invalid MrMcConfig: {e}");
        }
        let hasher = MinHasher::for_kmer_size(config.kmer, config.num_hashes, config.seed);
        IncrementalClusterer {
            config,
            hasher,
            representatives: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Seed from a finished batch run: the representatives of
    /// `result`'s clusters (its [`MrMcResult::representatives`]) become
    /// the live centroids, so subsequently pushed reads extend the
    /// existing clustering. The batch reads themselves are *not*
    /// re-recorded (their labels live in `result`).
    pub fn from_run(
        config: MrMcConfig,
        batch_reads: &[SeqRecord],
        result: &MrMcResult,
    ) -> Result<IncrementalClusterer, SeqIoError> {
        let mut inc = IncrementalClusterer::new(config);
        for rep in result.representatives() {
            let sketch = inc.hasher.sketch_sequence(&batch_reads[rep].seq)?;
            inc.representatives.push(sketch);
        }
        Ok(inc)
    }

    /// Assign one read; returns its cluster label. New clusters take
    /// the next free label.
    pub fn push(&mut self, read: &SeqRecord) -> Result<usize, SeqIoError> {
        let sketch = self.hasher.sketch_sequence(&read.seq)?;
        let label = self
            .representatives
            .iter()
            .position(|rep| {
                sketch_similarity(&sketch, rep, self.config.estimator) >= self.config.theta
            })
            .unwrap_or_else(|| {
                self.representatives.push(sketch.clone());
                self.representatives.len() - 1
            });
        self.labels.push(label);
        Ok(label)
    }

    /// Assign a micro-batch of reads in one call, returning their
    /// labels in input order. Semantically identical to calling
    /// [`IncrementalClusterer::push`] once per read (reads earlier in
    /// the batch can found clusters that later reads join), but the
    /// batch entry point lets callers — the `mrmc-server` admission
    /// path in particular — amortize per-read dispatch: sketches are
    /// computed up front for the whole batch, then assignment runs
    /// over the sketch slice without re-entering the codec per read.
    /// On a sketching error nothing is recorded (all-or-nothing).
    pub fn push_batch(&mut self, reads: &[SeqRecord]) -> Result<Vec<usize>, SeqIoError> {
        let sketches = reads
            .iter()
            .map(|r| self.hasher.sketch_sequence(&r.seq))
            .collect::<Result<Vec<Sketch>, SeqIoError>>()?;
        let mut out = Vec::with_capacity(sketches.len());
        for sketch in sketches {
            let label = self
                .representatives
                .iter()
                .position(|rep| {
                    sketch_similarity(&sketch, rep, self.config.estimator) >= self.config.theta
                })
                .unwrap_or_else(|| {
                    self.representatives.push(sketch.clone());
                    self.representatives.len() - 1
                });
            self.labels.push(label);
            out.push(label);
        }
        Ok(out)
    }

    /// Current cluster count (including seeded clusters).
    pub fn num_clusters(&self) -> usize {
        self.representatives.len()
    }

    /// Labels of pushed reads, in push order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Flat assignment over the pushed reads.
    pub fn assignment(&self) -> ClusterAssignment {
        ClusterAssignment::from_labels(self.labels.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::pipeline::MrMcMinH;
    use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

    fn two_species(n: usize, seed: u64) -> (Vec<SeqRecord>, Vec<usize>) {
        let spec = CommunitySpec {
            species: vec![
                SpeciesSpec {
                    name: "a".into(),
                    gc: 0.40,
                    abundance: 1.0,
                },
                SpeciesSpec {
                    name: "b".into(),
                    gc: 0.60,
                    abundance: 1.0,
                },
            ],
            rank: TaxRank::Phylum,
            genome_len: 50_000,
        };
        let sim = ReadSimulator::new(800, ErrorModel::with_total_rate(0.002));
        let d = spec.generate("t", n, &sim, seed);
        (d.reads.clone(), d.labels.unwrap())
    }

    fn config(theta: f64) -> MrMcConfig {
        MrMcConfig {
            kmer: 5,
            num_hashes: 64,
            theta,
            ..MrMcConfig::whole_metagenome()
        }
    }

    #[test]
    fn streaming_recovers_two_species() {
        let (reads, truth) = two_species(60, 1);
        let theta = crate::threshold::suggest_theta(&reads, &config(0.5), 50);
        let mut inc = IncrementalClusterer::new(config(theta));
        for r in &reads {
            inc.push(r).unwrap();
        }
        let acc = mrmc_metrics::weighted_accuracy(&inc.assignment(), &truth, 1).unwrap();
        assert!(acc > 85.0, "accuracy {acc}");
        assert_eq!(inc.labels().len(), reads.len());
    }

    #[test]
    fn streaming_matches_batch_greedy() {
        // Pushing reads one at a time is *exactly* Algorithm 1's
        // iteration order, so results coincide with the batch greedy
        // run at the same θ.
        let (reads, _) = two_species(40, 2);
        let theta = 0.5;
        let batch = MrMcMinH::new(config(theta).greedy()).run(&reads).unwrap();
        let mut inc = IncrementalClusterer::new(config(theta));
        for r in &reads {
            inc.push(r).unwrap();
        }
        assert_eq!(inc.assignment().compact(), batch.assignment);
    }

    #[test]
    fn seeding_from_batch_extends_clusters() {
        let (reads, _) = two_species(40, 3);
        let theta = crate::threshold::suggest_theta(&reads, &config(0.5), 40);
        let cfg = MrMcConfig {
            mode: Mode::Hierarchical,
            ..config(theta)
        };
        let result = MrMcMinH::new(cfg).run(&reads).unwrap();
        let k = result.num_clusters();

        let mut inc = IncrementalClusterer::from_run(cfg, &reads, &result).unwrap();
        assert_eq!(inc.num_clusters(), k);
        // New reads from the same genomes mostly land in seeded
        // clusters rather than founding new ones.
        let (new_reads, _) = two_species(20, 3); // same seed → same genomes
        for r in &new_reads {
            inc.push(r).unwrap();
        }
        assert!(
            inc.num_clusters() <= k + 4,
            "seeded {k}, after stream {}",
            inc.num_clusters()
        );
    }

    #[test]
    fn push_batch_matches_repeated_push() {
        let (reads, _) = two_species(50, 4);
        let theta = 0.5;

        // Oracle: one read at a time.
        let mut one = IncrementalClusterer::new(config(theta));
        let mut expect = Vec::new();
        for r in &reads {
            expect.push(one.push(r).unwrap());
        }

        // Same reads through micro-batches of varying size, including
        // an empty batch and a batch larger than the remainder.
        let mut batched = IncrementalClusterer::new(config(theta));
        let mut got = Vec::new();
        let mut at = 0;
        for size in [1, 0, 7, 3, 20, reads.len()] {
            let end = (at + size).min(reads.len());
            got.extend(batched.push_batch(&reads[at..end]).unwrap());
            at = end;
        }
        assert_eq!(at, reads.len(), "batch schedule covers every read");
        assert_eq!(got, expect, "batched labels differ from sequential push");
        assert_eq!(batched.labels(), one.labels());
        assert_eq!(batched.num_clusters(), one.num_clusters());

        // A batch where later reads join clusters founded earlier in
        // the *same* batch (all reads at once) still matches.
        let mut whole = IncrementalClusterer::new(config(theta));
        assert_eq!(whole.push_batch(&reads).unwrap(), expect);
    }

    #[test]
    fn empty_and_degenerate_reads() {
        let mut inc = IncrementalClusterer::new(config(0.9));
        assert_eq!(inc.num_clusters(), 0);
        // A read shorter than k founds its own (degenerate) cluster.
        let tiny = SeqRecord::new("t", b"AC".to_vec());
        let l = inc.push(&tiny).unwrap();
        assert_eq!(l, 0);
        // A second degenerate read joins it (degenerate sketches are
        // mutually "identical" by convention).
        let tiny2 = SeqRecord::new("t2", b"GG".to_vec());
        assert_eq!(inc.push(&tiny2).unwrap(), 0);
    }
}
