//! The end-to-end MrMC-MinH pipeline.

use std::time::{Duration, Instant};

use mrmc_cluster::{
    agglomerative, agglomerative_sparse, greedy_cluster, greedy_cluster_sparse, ClusterAssignment,
    Dendrogram,
};
use mrmc_mapreduce::chaos::{FaultInjector, NoFaults, RecoveryCounters};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_mapreduce::MrError;
use mrmc_seqio::SeqRecord;

use crate::banded::banded_graph_stage_with;
use crate::config::{CandidateGen, Mode, MrMcConfig};
use crate::stages::{similarity_matrix_stage_with, sketch_similarity, sketch_stage_with};

/// Result of a MrMC-MinH run.
#[derive(Debug)]
pub struct MrMcResult {
    /// Cluster labels, compacted to `0..num_clusters`.
    pub assignment: ClusterAssignment,
    /// The dendrogram (hierarchical mode only).
    pub dendrogram: Option<Dendrogram>,
    /// Map-Reduce stage reports (feeds the simulated-cluster model).
    pub pipeline: Pipeline,
    /// Wall-clock of the clustering step proper (after sketching).
    pub cluster_time: Duration,
    /// Total wall-clock of the run.
    pub total_time: Duration,
}

impl MrMcResult {
    /// Convenience: cluster count.
    pub fn num_clusters(&self) -> usize {
        self.assignment.num_clusters()
    }

    /// Recovery work performed across all Map-Reduce stages of the run
    /// (all zero unless faults were injected — or genuinely occurred).
    pub fn recovery(&self) -> RecoveryCounters {
        self.pipeline.total_recovery()
    }

    /// Re-cut the stored dendrogram at a different θ without
    /// recomputing sketches or the similarity matrix — the paper's
    /// "clustering results at different hierarchical taxonomic levels"
    /// feature. `None` in greedy mode (no dendrogram exists).
    pub fn cut_at(&self, theta: f64) -> Option<ClusterAssignment> {
        self.dendrogram
            .as_ref()
            .map(|d| mrmc_cluster::cut_dendrogram(d, theta).compact())
    }

    /// Multi-level taxonomy: one flat clustering per θ, finest first
    /// if `thetas` is descending. `None` in greedy mode.
    pub fn taxonomy_levels(&self, thetas: &[f64]) -> Option<Vec<ClusterAssignment>> {
        self.dendrogram
            .as_ref()
            .map(|d| mrmc_cluster::cut_levels(d, thetas))
    }

    /// Representative read index per cluster: the lowest-indexed
    /// member (the greedy seed in greedy mode; a stable, deterministic
    /// choice in hierarchical mode). Sorted by cluster label. Supports
    /// the paper's "analyze only cluster representatives" workflow.
    pub fn representatives(&self) -> Vec<usize> {
        let members = self.assignment.members();
        let mut labels: Vec<usize> = members.keys().copied().collect();
        labels.sort_unstable();
        labels
            .into_iter()
            .map(|l| *members[&l].iter().min().expect("clusters are non-empty"))
            .collect()
    }
}

/// The MrMC-MinH runner.
#[derive(Debug, Clone)]
pub struct MrMcMinH {
    config: MrMcConfig,
}

impl MrMcMinH {
    /// Build a runner; panics on invalid configuration (validate
    /// early — every stage depends on these knobs).
    pub fn new(config: MrMcConfig) -> MrMcMinH {
        if let Err(e) = config.validate() {
            panic!("invalid MrMcConfig: {e}");
        }
        MrMcMinH { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MrMcConfig {
        &self.config
    }

    /// Cluster the reads.
    pub fn run(&self, reads: &[SeqRecord]) -> Result<MrMcResult, MrError> {
        self.run_with_injector(reads, &NoFaults)
    }

    /// Cluster the reads while a [`FaultInjector`] disrupts the
    /// Map-Reduce substrate. The clustering output must be bit-identical
    /// to a fault-free run whenever recovery succeeds; the price paid
    /// is visible in [`MrMcResult::recovery`].
    pub fn run_with_injector(
        &self,
        reads: &[SeqRecord],
        injector: &dyn FaultInjector,
    ) -> Result<MrMcResult, MrError> {
        self.run_inner(reads, injector, None)
    }

    /// Cluster the reads while recording a structured trace of every
    /// Map-Reduce stage into `tracer` (task attempts, shuffle runs,
    /// combiner activity, recovery actions). Tracing is passive: the
    /// clustering output is bit-identical to an untraced run.
    pub fn run_traced(
        &self,
        reads: &[SeqRecord],
        injector: &dyn FaultInjector,
        tracer: std::sync::Arc<mrmc_mapreduce::Tracer>,
    ) -> Result<MrMcResult, MrError> {
        self.run_inner(reads, injector, Some(tracer))
    }

    fn run_inner(
        &self,
        reads: &[SeqRecord],
        injector: &dyn FaultInjector,
        tracer: Option<std::sync::Arc<mrmc_mapreduce::Tracer>>,
    ) -> Result<MrMcResult, MrError> {
        let start = Instant::now();
        let mut pipeline = Pipeline::new(match self.config.mode {
            Mode::Greedy => "mrmc-minh-g",
            Mode::Hierarchical => "mrmc-minh-h",
        });
        if let Some(tracer) = tracer {
            pipeline = pipeline.traced(tracer);
        }

        // Stage 1: minwise sketches (map-only over records).
        let sketches = sketch_stage_with(reads, &self.config, &mut pipeline, injector)?;

        let cluster_start = Instant::now();
        let (assignment, dendrogram) = match (self.config.mode, self.config.candidates) {
            (Mode::Greedy, CandidateGen::Dense) => {
                // Algorithm 1 — iterative, representative-based; runs
                // on the driver like the paper's GreedyClustering UDF
                // (invoked once on the grouped relation).
                let assignment = greedy_cluster(sketches.len(), self.config.theta, |i, j| {
                    sketch_similarity(&sketches[i], &sketches[j], self.config.estimator)
                });
                (assignment.compact(), None)
            }
            (Mode::Greedy, CandidateGen::Banded { .. }) => {
                // Algorithm 1 over the pruned θ-graph: greedy only ever
                // tests `sim ≥ θ`, so the sparse run is identical to
                // dense whenever the graph holds every θ-pair (the
                // auto-tuned scheme's guarantee).
                let graph =
                    banded_graph_stage_with(&sketches, &self.config, &mut pipeline, injector)?;
                (
                    greedy_cluster_sparse(&graph, self.config.theta).compact(),
                    None,
                )
            }
            (Mode::Hierarchical, CandidateGen::Dense) => {
                // Algorithm 2 — all-pairs matrix via row partitioning,
                // then agglomerative clustering with θ cutoff.
                let matrix =
                    similarity_matrix_stage_with(sketches, &self.config, &mut pipeline, injector)?;
                let (assignment, dendro) =
                    agglomerative(&matrix, self.config.linkage, self.config.theta);
                (assignment.compact(), Some(dendro))
            }
            (Mode::Hierarchical, CandidateGen::Banded { .. }) => {
                // Algorithm 2 over the pruned graph (missing pairs read
                // as similarity 0): the θ-cut matches dense on corpora
                // whose clusters are θ-separated; sub-θ merges follow
                // single-linkage-at-θ semantics.
                let graph =
                    banded_graph_stage_with(&sketches, &self.config, &mut pipeline, injector)?;
                let (assignment, dendro) =
                    agglomerative_sparse(&graph, self.config.linkage, self.config.theta);
                (assignment.compact(), Some(dendro))
            }
        };
        let cluster_time = cluster_start.elapsed();

        Ok(MrMcResult {
            assignment,
            dendrogram,
            pipeline,
            cluster_time,
            total_time: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Estimator;
    use mrmc_cluster::Linkage;
    use mrmc_simulate::{CommunitySpec, ErrorModel, ReadSimulator, SpeciesSpec, TaxRank};

    fn two_species(n: usize, seed: u64) -> (Vec<SeqRecord>, Vec<usize>) {
        let spec = CommunitySpec {
            species: vec![
                SpeciesSpec {
                    name: "a".into(),
                    gc: 0.40,
                    abundance: 1.0,
                },
                SpeciesSpec {
                    name: "b".into(),
                    gc: 0.60,
                    abundance: 1.0,
                },
            ],
            rank: TaxRank::Phylum,
            genome_len: 50_000,
        };
        let sim = ReadSimulator::new(800, ErrorModel::with_total_rate(0.002));
        let d = spec.generate("t", n, &sim, seed);
        (d.reads.clone(), d.labels.unwrap())
    }

    fn config(mode: Mode, theta: f64) -> MrMcConfig {
        MrMcConfig {
            kmer: 5,
            num_hashes: 64,
            theta,
            mode,
            map_tasks: 4,
            ..Default::default()
        }
    }

    #[test]
    fn hierarchical_recovers_two_species_compositionally() {
        // k = 5 sketches on 800 bp reads act as composition signatures
        // (the whole-metagenome regime of Table III).
        let (reads, truth) = two_species(60, 1);
        let result = MrMcMinH::new(config(Mode::Hierarchical, 0.55))
            .run(&reads)
            .unwrap();
        let acc = mrmc_metrics::weighted_accuracy(&result.assignment, &truth, 1).unwrap();
        assert!(acc > 90.0, "accuracy {acc}");
        assert!(result.dendrogram.is_some());
        // Two MR stages: sketch + similarity.
        assert_eq!(result.pipeline.stages().len(), 2);
    }

    #[test]
    fn greedy_runs_and_is_faster_shape() {
        let (reads, truth) = two_species(60, 2);
        let result = MrMcMinH::new(config(Mode::Greedy, 0.55))
            .run(&reads)
            .unwrap();
        let acc = mrmc_metrics::weighted_accuracy(&result.assignment, &truth, 1).unwrap();
        assert!(acc > 80.0, "accuracy {acc}");
        assert!(result.dendrogram.is_none());
        // Only the sketch stage hits the MR substrate in greedy mode.
        assert_eq!(result.pipeline.stages().len(), 1);
    }

    #[test]
    fn theta_one_only_merges_identical_sketches() {
        let reads = vec![
            SeqRecord::new("a", b"ACGTACGTACGTACGTAC".to_vec()),
            SeqRecord::new("b", b"ACGTACGTACGTACGTAC".to_vec()),
            SeqRecord::new("c", b"TTTTGGGGCCCCAAAATT".to_vec()),
        ];
        for mode in [Mode::Greedy, Mode::Hierarchical] {
            let result = MrMcMinH::new(config(mode, 1.0)).run(&reads).unwrap();
            assert_eq!(result.num_clusters(), 2, "{mode:?}");
        }
    }

    #[test]
    fn hierarchical_linkage_choices_all_work() {
        let (reads, _) = two_species(20, 3);
        for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
            let cfg = MrMcConfig {
                linkage,
                ..config(Mode::Hierarchical, 0.5)
            };
            let result = MrMcMinH::new(cfg).run(&reads).unwrap();
            assert!(result.num_clusters() >= 1);
        }
    }

    #[test]
    fn set_based_estimator_runs() {
        let (reads, _) = two_species(20, 4);
        let cfg = MrMcConfig {
            estimator: Estimator::SetBased,
            ..config(Mode::Hierarchical, 0.5)
        };
        let result = MrMcMinH::new(cfg).run(&reads).unwrap();
        // The set-based estimator is biased relative to positional
        // agreement; just verify it produces a complete clustering.
        assert_eq!(result.assignment.len(), reads.len());
        assert!(result.num_clusters() >= 1);
    }

    #[test]
    fn empty_input_ok() {
        let result = MrMcMinH::new(config(Mode::Hierarchical, 0.9))
            .run(&[])
            .unwrap();
        assert_eq!(result.num_clusters(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid MrMcConfig")]
    fn invalid_config_panics() {
        MrMcMinH::new(MrMcConfig {
            kmer: 0,
            ..Default::default()
        });
    }

    #[test]
    fn taxonomy_levels_refine() {
        let (reads, _) = two_species(40, 6);
        let result = MrMcMinH::new(config(Mode::Hierarchical, 0.5))
            .run(&reads)
            .unwrap();
        let levels = result
            .taxonomy_levels(&[0.9, 0.5, 0.1])
            .expect("hierarchical");
        assert_eq!(levels.len(), 3);
        // Counts non-increasing as θ loosens; the 0.1 cut is coarsest.
        assert!(levels[0].num_clusters() >= levels[1].num_clusters());
        assert!(levels[1].num_clusters() >= levels[2].num_clusters());
        // cut_at(θ of the run) reproduces the run's own assignment
        // up to relabeling.
        let recut = result.cut_at(0.5).expect("hierarchical");
        assert_eq!(recut.num_clusters(), result.assignment.num_clusters());
        // Greedy mode has no dendrogram.
        let greedy = MrMcMinH::new(config(Mode::Greedy, 0.5))
            .run(&reads)
            .unwrap();
        assert!(greedy.cut_at(0.5).is_none());
    }

    #[test]
    fn representatives_one_per_cluster() {
        let (reads, _) = two_species(30, 7);
        let result = MrMcMinH::new(config(Mode::Hierarchical, 0.5))
            .run(&reads)
            .unwrap();
        let reps = result.representatives();
        assert_eq!(reps.len(), result.num_clusters());
        // Each representative belongs to a distinct cluster.
        let mut labels: Vec<usize> = reps.iter().map(|&r| result.assignment.label(r)).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), reps.len());
    }

    #[test]
    fn canonical_mode_is_strand_invariant() {
        use mrmc_seqio::alphabet::reverse_complement;
        let (reads, truth) = two_species(40, 9);
        // Flip half the reads to the opposite strand — real shotgun
        // data arrives like this.
        let mixed: Vec<SeqRecord> = reads
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if i % 2 == 0 {
                    r.clone()
                } else {
                    SeqRecord::new(r.id.clone(), reverse_complement(&r.seq))
                }
            })
            .collect();

        let run = |canonical: bool, reads: &[SeqRecord]| {
            let cfg = MrMcConfig {
                canonical,
                ..config(Mode::Hierarchical, 0.5)
            };
            let theta = crate::threshold::suggest_theta(reads, &cfg, 40);
            MrMcMinH::new(MrMcConfig { theta, ..cfg })
                .run(reads)
                .unwrap()
        };

        // Canonical mode: accuracy survives the strand mixing.
        let canon = run(true, &mixed);
        let acc_canon = mrmc_metrics::weighted_accuracy(&canon.assignment, &truth, 2).unwrap();
        assert!(acc_canon > 90.0, "canonical accuracy {acc_canon}");

        // And a read plus its own reverse complement always share a
        // cluster under canonical sketches (identical by construction).
        let hasher = mrmc_minhash::MinHasher::for_kmer_size(5, 64, 1).canonical();
        let fwd = hasher.sketch_sequence(&reads[0].seq).unwrap();
        let rev = hasher
            .sketch_sequence(&reverse_complement(&reads[0].seq))
            .unwrap();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn chaos_run_bit_identical_to_clean_run() {
        use mrmc_mapreduce::chaos::{FaultPlan, Phase};

        let (reads, _) = two_species(40, 8);
        let runner = MrMcMinH::new(config(Mode::Hierarchical, 0.55));
        let clean = runner.run(&reads).unwrap();
        // Job 0 = sketch, job 1 = similarity: panics in both stages, a
        // straggler, a node death, all at once.
        let inj = FaultPlan::new()
            .task_panic(0, Phase::Map, 1, 2)
            .task_panic(1, Phase::Map, 3, 1)
            .task_slowdown(1, Phase::Map, 0, 15)
            .node_death_after_map(0, 2)
            .injector();
        let chaotic = runner.run_with_injector(&reads, &inj).unwrap();
        assert_eq!(chaotic.assignment, clean.assignment);
        assert_eq!(chaotic.dendrogram, clean.dendrogram);
        let rec = chaotic.recovery();
        assert_eq!(rec.tasks_retried, 3);
        assert_eq!(rec.speculative_wins, 1);
        assert!(rec.maps_reexecuted_node_loss >= 1);
        assert!(clean.recovery().is_clean());
    }

    #[test]
    fn traced_run_bit_identical_with_deterministic_ledger() {
        use mrmc_mapreduce::chaos::{FaultPlan, NoFaults, Phase};
        use mrmc_mapreduce::Tracer;
        use std::sync::Arc;

        let (reads, _) = two_species(40, 8);
        let runner = MrMcMinH::new(config(Mode::Hierarchical, 0.55));
        let plain = runner.run(&reads).unwrap();

        // Tracing a clean run is passive and its ledger replays.
        let t1 = Arc::new(Tracer::new());
        let traced = runner.run_traced(&reads, &NoFaults, t1.clone()).unwrap();
        assert_eq!(traced.assignment, plain.assignment);
        assert_eq!(traced.dendrogram, plain.dendrogram);
        let t2 = Arc::new(Tracer::new());
        runner.run_traced(&reads, &NoFaults, t2.clone()).unwrap();
        assert_eq!(t1.ledger().signature(), t2.ledger().signature());
        // One ledger job per MR stage (sketch + similarity).
        assert_eq!(t1.ledger().jobs.len(), 2);

        // Under a fault plan, the output is still bit-identical and
        // the ledger is a pure function of the plan.
        let plan = FaultPlan::new()
            .task_panic(0, Phase::Map, 1, 2)
            .task_slowdown(1, Phase::Map, 0, 15)
            .node_death_after_map(0, 2);
        let c1 = Arc::new(Tracer::new());
        let chaotic = runner
            .run_traced(&reads, &plan.clone().injector(), c1.clone())
            .unwrap();
        assert_eq!(chaotic.assignment, plain.assignment);
        let c2 = Arc::new(Tracer::new());
        runner
            .run_traced(&reads, &plan.injector(), c2.clone())
            .unwrap();
        assert_eq!(c1.ledger().signature(), c2.ledger().signature());
        // The chaotic ledger differs from the clean one (it carries
        // the recovery spans) but shares the job structure.
        assert_ne!(c1.ledger().signature(), t1.ledger().signature());
        assert_eq!(c1.ledger().jobs, t1.ledger().jobs);
    }

    #[test]
    fn deterministic_given_seed() {
        let (reads, _) = two_species(30, 5);
        let r1 = MrMcMinH::new(config(Mode::Hierarchical, 0.6))
            .run(&reads)
            .unwrap();
        let r2 = MrMcMinH::new(config(Mode::Hierarchical, 0.6))
            .run(&reads)
            .unwrap();
        assert_eq!(r1.assignment, r2.assignment);
    }
}
