//! The Map-Reduce stages of the MrMC-MinH pipeline (paper Fig. 1).
//!
//! Stage 1 (**sketching**, map-only): each mapper encodes the DNA
//! alphabet, extracts k-mers, and computes the n minwise hash values —
//! the fused equivalent of the `StringGenerator` → `TranslateToKmer` →
//! `CalculateMinwiseHash` UDF chain.
//!
//! Stage 2 (**all-pairs similarity**, map-only over *rows*): "the
//! calculation of all pairwise similarity is performed in parallel by
//! performing a row-wise partition" — each map task owns a strip of
//! rows of the condensed matrix.

use mrmc_cluster::CondensedMatrix;
use mrmc_mapreduce::chaos::{FaultInjector, NoFaults};
use mrmc_mapreduce::job::{JobConfig, Mapper, TaskContext};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_mapreduce::MrError;
use mrmc_minhash::{positional_similarity, set_similarity, MinHasher, Sketch};
use mrmc_seqio::SeqRecord;

use crate::config::{Estimator, MrMcConfig};

/// Stage-1 mapper: read index → sketch. Borrows the read slice (the
/// engine runs mappers on scoped threads), so map input is just the
/// index — no `SeqRecord` is ever cloned into the job, even on task
/// retry.
struct SketchMapper<'a> {
    hasher: MinHasher,
    reads: &'a [SeqRecord],
}

impl Mapper for SketchMapper<'_> {
    type InKey = usize;
    type InValue = ();
    type OutKey = usize;
    type OutValue = Sketch;

    fn map(&self, key: usize, _v: (), ctx: &mut TaskContext<usize, Sketch>) {
        let sketch = self
            .hasher
            .sketch_sequence(&self.reads[key].seq)
            .expect("k validated by MrMcConfig");
        if sketch.is_degenerate() {
            ctx.count("DEGENERATE_SKETCHES", 1);
        }
        ctx.emit(key, sketch);
    }
}

/// Run the sketching stage on the Map-Reduce substrate. Output order
/// matches input order.
pub fn sketch_stage(
    reads: &[SeqRecord],
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
) -> Result<Vec<Sketch>, MrError> {
    sketch_stage_with(reads, config, pipeline, &NoFaults)
}

/// [`sketch_stage`] under a fault injector. Tasks get the Hadoop
/// default attempt budget (4), so injected panics are survivable.
pub fn sketch_stage_with(
    reads: &[SeqRecord],
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
    injector: &dyn FaultInjector,
) -> Result<Vec<Sketch>, MrError> {
    let mut hasher = MinHasher::for_kmer_size(config.kmer, config.num_hashes, config.seed);
    if config.canonical {
        hasher = hasher.canonical();
    }
    let mapper = SketchMapper { hasher, reads };
    let input: Vec<(usize, ())> = (0..reads.len()).map(|i| (i, ())).collect();
    let mut job = JobConfig::named("minwise-sketch").attempts(4);
    if let Some(w) = config.workers {
        job = job.workers(w);
    }
    let out =
        pipeline.run_map_stage_with_faults(input, config.map_tasks, &mapper, &job, injector)?;
    Ok(out.into_iter().map(|(_, s)| s).collect())
}

/// Evaluate the configured estimator on a sketch pair.
pub fn sketch_similarity(a: &Sketch, b: &Sketch, estimator: Estimator) -> f64 {
    match estimator {
        Estimator::Positional => positional_similarity(a, b),
        Estimator::SetBased => set_similarity(a, b),
    }
}

/// Partition rows `0..n` into `tasks` contiguous blocks with near-equal
/// *pair* counts. Row `r` owns `n−1−r` pairs, so equal row counts give
/// wildly unequal work (row 0 carries n−1 pairs, row n−1 none);
/// boundaries are instead cut when a block reaches ≈ `total/tasks`
/// pairs, which is what makes the stage's task timings level for the
/// Figure 2 makespan simulation.
fn balanced_row_blocks(n: usize, tasks: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let total = n * (n - 1) / 2;
    let target = total.div_ceil(tasks.max(1)).max(1);
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for r in 0..n {
        acc += n - 1 - r;
        if acc >= target || r == n - 1 {
            blocks.push((start, r + 1));
            start = r + 1;
            acc = 0;
        }
    }
    blocks
}

/// Stage-2 mapper: a contiguous block of matrix rows → one similarity
/// strip per row. Borrows the sketch list (scoped-thread engine), so
/// nothing is cloned into tasks.
///
/// Within a block the column range is walked in sub-blocks of
/// [`RowBlockMapper::JBLOCK`] sketches: every row of the block scans a
/// column sub-block while those sketches are hot in cache, instead of
/// streaming the entire sketch list once per row.
struct RowBlockMapper<'a> {
    sketches: &'a [Sketch],
    estimator: Estimator,
}

impl RowBlockMapper<'_> {
    /// Column sub-block width: at the default 100 hashes a sketch is
    /// ~800 B of values, so 16 sketches (~13 KB) sit comfortably in L1.
    const JBLOCK: usize = 16;
}

impl Mapper for RowBlockMapper<'_> {
    type InKey = usize;
    type InValue = (usize, usize);
    type OutKey = usize;
    type OutValue = Vec<f32>;

    fn map(&self, _block: usize, (r0, r1): (usize, usize), ctx: &mut TaskContext<usize, Vec<f32>>) {
        let n = self.sketches.len();
        let mut strips: Vec<Vec<f32>> = (r0..r1)
            .map(|r| Vec::with_capacity(n.saturating_sub(r + 1)))
            .collect();
        let mut jb = r0 + 1;
        while jb < n {
            let jend = (jb + Self::JBLOCK).min(n);
            for (strip, row) in strips.iter_mut().zip(r0..r1) {
                for j in jb.max(row + 1)..jend {
                    strip.push(sketch_similarity(
                        &self.sketches[row],
                        &self.sketches[j],
                        self.estimator,
                    ) as f32);
                }
            }
            jb = jend;
        }
        let mut pairs = 0u64;
        for (row, strip) in (r0..r1).zip(strips) {
            pairs += strip.len() as u64;
            ctx.emit(row, strip);
        }
        ctx.count("PAIRS_COMPUTED", pairs);
    }
}

/// Run the all-pairs stage: one map task per pair-balanced row block.
pub fn similarity_matrix_stage(
    sketches: Vec<Sketch>,
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
) -> Result<CondensedMatrix, MrError> {
    similarity_matrix_stage_with(sketches, config, pipeline, &NoFaults)
}

/// [`similarity_matrix_stage`] under a fault injector. Tasks get the
/// Hadoop default attempt budget (4).
pub fn similarity_matrix_stage_with(
    sketches: Vec<Sketch>,
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
    injector: &dyn FaultInjector,
) -> Result<CondensedMatrix, MrError> {
    let n = sketches.len();
    let mapper = RowBlockMapper {
        sketches: &sketches,
        estimator: config.estimator,
    };
    let mut job = JobConfig::named("pairwise-similarity").attempts(4);
    if let Some(w) = config.workers {
        job = job.workers(w);
    }
    // More, smaller tasks than the sketch stage, balanced by pair
    // count rather than row count.
    let tasks = (config.map_tasks * 4).min(n.max(1));
    let blocks = balanced_row_blocks(n, tasks);
    let input: Vec<(usize, (usize, usize))> = blocks.into_iter().enumerate().collect();
    let num_tasks = input.len().max(1);
    let rows = pipeline.run_map_stage_with_faults(input, num_tasks, &mapper, &job, injector)?;

    // Assemble the condensed matrix from row strips, keyed by row (the
    // engine preserves task order, but keying by row makes assembly
    // independent of emission order).
    let mut matrix = CondensedMatrix::build(n, |_, _| 0.0);
    for (row, strip) in rows {
        for (k, v) in strip.into_iter().enumerate() {
            matrix.set(row, row + 1 + k, f64::from(v));
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads() -> Vec<SeqRecord> {
        vec![
            SeqRecord::new("a", b"ACGTACGTACGTACGTTTTTGGGG".to_vec()),
            SeqRecord::new("b", b"ACGTACGTACGTACGTTTTTGGGG".to_vec()),
            SeqRecord::new("c", b"TTGGCCAATTGGCCAATTGGCCAA".to_vec()),
        ]
    }

    fn config() -> MrMcConfig {
        MrMcConfig {
            kmer: 5,
            num_hashes: 32,
            map_tasks: 2,
            ..Default::default()
        }
    }

    #[test]
    fn sketch_stage_preserves_order_and_determinism() {
        let mut p1 = Pipeline::new("t");
        let s1 = sketch_stage(&reads(), &config(), &mut p1).unwrap();
        let mut p2 = Pipeline::new("t");
        let s2 = sketch_stage(&reads(), &config(), &mut p2).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 3);
        assert_eq!(s1[0], s1[1]); // identical sequences, identical sketches
        assert_ne!(s1[0], s1[2]);
        assert_eq!(p1.stages().len(), 1);
    }

    #[test]
    fn similarity_matrix_matches_direct_computation() {
        let mut p = Pipeline::new("t");
        let cfg = config();
        let sketches = sketch_stage(&reads(), &cfg, &mut p).unwrap();
        let direct = CondensedMatrix::build(3, |i, j| {
            sketch_similarity(&sketches[i], &sketches[j], cfg.estimator)
        });
        let via_mr = similarity_matrix_stage(sketches, &cfg, &mut p).unwrap();
        assert_eq!(via_mr, direct);
        assert_eq!(via_mr.get(0, 1), 1.0);
        assert!(via_mr.get(0, 2) < 0.2);
    }

    #[test]
    fn balanced_blocks_tile_rows_and_balance_pairs() {
        for (n, tasks) in [(0usize, 4usize), (1, 4), (2, 1), (10, 3), (57, 8), (100, 7)] {
            let blocks = balanced_row_blocks(n, tasks);
            // Blocks tile 0..n contiguously.
            let mut cursor = 0;
            for &(s, e) in &blocks {
                assert_eq!(s, cursor, "n={n} tasks={tasks}");
                assert!(e > s);
                cursor = e;
            }
            assert_eq!(cursor, n, "n={n} tasks={tasks}");
            if n < 2 {
                continue;
            }
            // No block exceeds target + one row's worth of pairs.
            let total = n * (n - 1) / 2;
            let target = total.div_ceil(tasks).max(1);
            for &(s, e) in &blocks {
                let pairs: usize = (s..e).map(|r| n - 1 - r).sum();
                assert!(
                    pairs < target + n,
                    "n={n} tasks={tasks} block ({s},{e}) has {pairs} pairs, target {target}"
                );
            }
        }
    }

    #[test]
    fn blocked_strips_match_direct_at_scale() {
        // Enough rows to cross several column sub-blocks (JBLOCK = 16).
        let reads: Vec<SeqRecord> = (0..40)
            .map(|i| {
                let seq: Vec<u8> = (0..60)
                    .map(|j| b"ACGT"[(i * 7 + j * 3 + i * j) % 4])
                    .collect();
                SeqRecord::new(format!("r{i}"), seq)
            })
            .collect();
        let cfg = config();
        let mut p = Pipeline::new("t");
        let sketches = sketch_stage(&reads, &cfg, &mut p).unwrap();
        let direct = CondensedMatrix::build(reads.len(), |i, j| {
            sketch_similarity(&sketches[i], &sketches[j], cfg.estimator)
        });
        let via_mr = similarity_matrix_stage(sketches, &cfg, &mut p).unwrap();
        assert_eq!(via_mr, direct);
    }

    #[test]
    fn degenerate_sketch_counted() {
        let mut p = Pipeline::new("t");
        let short = vec![SeqRecord::new("s", b"ACG".to_vec())]; // < k
        let cfg = config();
        let s = sketch_stage(&short, &cfg, &mut p).unwrap();
        assert!(s[0].is_degenerate());
    }

    #[test]
    fn estimators_differ_in_general() {
        let mut p = Pipeline::new("t");
        let cfg = config();
        let s = sketch_stage(&reads(), &cfg, &mut p).unwrap();
        // For identical sequences both estimators say 1.
        assert_eq!(sketch_similarity(&s[0], &s[1], Estimator::Positional), 1.0);
        assert_eq!(sketch_similarity(&s[0], &s[1], Estimator::SetBased), 1.0);
    }

    #[test]
    fn empty_input() {
        let mut p = Pipeline::new("t");
        let cfg = config();
        let s = sketch_stage(&[], &cfg, &mut p).unwrap();
        assert!(s.is_empty());
        let m = similarity_matrix_stage(s, &cfg, &mut p).unwrap();
        assert!(m.is_empty());
    }
}
