//! The Map-Reduce stages of the MrMC-MinH pipeline (paper Fig. 1).
//!
//! Stage 1 (**sketching**, map-only): each mapper encodes the DNA
//! alphabet, extracts k-mers, and computes the n minwise hash values —
//! the fused equivalent of the `StringGenerator` → `TranslateToKmer` →
//! `CalculateMinwiseHash` UDF chain.
//!
//! Stage 2 (**all-pairs similarity**, map-only over *rows*): "the
//! calculation of all pairwise similarity is performed in parallel by
//! performing a row-wise partition" — each map task owns a strip of
//! rows of the condensed matrix.

use std::sync::Arc;

use mrmc_mapreduce::job::{JobConfig, Mapper, TaskContext};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_mapreduce::MrError;
use mrmc_minhash::{positional_similarity, set_similarity, MinHasher, Sketch};
use mrmc_cluster::CondensedMatrix;
use mrmc_seqio::SeqRecord;

use crate::config::{Estimator, MrMcConfig};

/// Stage-1 mapper: record → sketch.
struct SketchMapper {
    hasher: MinHasher,
}

impl Mapper for SketchMapper {
    type InKey = usize;
    type InValue = SeqRecord;
    type OutKey = usize;
    type OutValue = Sketch;

    fn map(&self, key: usize, record: SeqRecord, ctx: &mut TaskContext<usize, Sketch>) {
        let sketch = self
            .hasher
            .sketch_sequence(&record.seq)
            .expect("k validated by MrMcConfig");
        if sketch.is_degenerate() {
            ctx.count("DEGENERATE_SKETCHES", 1);
        }
        ctx.emit(key, sketch);
    }
}

/// Run the sketching stage on the Map-Reduce substrate. Output order
/// matches input order.
pub fn sketch_stage(
    reads: &[SeqRecord],
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
) -> Result<Vec<Sketch>, MrError> {
    let mut hasher = MinHasher::for_kmer_size(config.kmer, config.num_hashes, config.seed);
    if config.canonical {
        hasher = hasher.canonical();
    }
    let mapper = SketchMapper { hasher };
    let input: Vec<(usize, SeqRecord)> = reads.iter().cloned().enumerate().collect();
    let mut job = JobConfig::named("minwise-sketch");
    if let Some(w) = config.workers {
        job = job.workers(w);
    }
    let out = pipeline.run_map_stage(input, config.map_tasks, &mapper, &job)?;
    Ok(out.into_iter().map(|(_, s)| s).collect())
}

/// Evaluate the configured estimator on a sketch pair.
pub fn sketch_similarity(a: &Sketch, b: &Sketch, estimator: Estimator) -> f64 {
    match estimator {
        Estimator::Positional => positional_similarity(a, b),
        Estimator::SetBased => set_similarity(a, b),
    }
}

/// Stage-2 mapper: matrix row index → the row's similarity strip.
struct RowMapper {
    sketches: Arc<Vec<Sketch>>,
    estimator: Estimator,
}

impl Mapper for RowMapper {
    type InKey = usize;
    type InValue = ();
    type OutKey = usize;
    type OutValue = Vec<f32>;

    fn map(&self, row: usize, _v: (), ctx: &mut TaskContext<usize, Vec<f32>>) {
        let n = self.sketches.len();
        let strip: Vec<f32> = ((row + 1)..n)
            .map(|j| {
                sketch_similarity(&self.sketches[row], &self.sketches[j], self.estimator) as f32
            })
            .collect();
        ctx.count("PAIRS_COMPUTED", strip.len() as u64);
        ctx.emit(row, strip);
    }
}

/// Run the all-pairs stage: one map task strip per chunk of rows.
pub fn similarity_matrix_stage(
    sketches: Vec<Sketch>,
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
) -> Result<CondensedMatrix, MrError> {
    let n = sketches.len();
    let shared = Arc::new(sketches);
    let mapper = RowMapper {
        sketches: Arc::clone(&shared),
        estimator: config.estimator,
    };
    let input: Vec<(usize, ())> = (0..n).map(|i| (i, ())).collect();
    let mut job = JobConfig::named("pairwise-similarity");
    if let Some(w) = config.workers {
        job = job.workers(w);
    }
    // More, smaller tasks than the sketch stage: row costs are wildly
    // unequal (row 0 has n−1 pairs, row n−1 has none), so finer tasks
    // load-balance better.
    let tasks = (config.map_tasks * 4).min(n.max(1));
    let rows = pipeline.run_map_stage(input, tasks, &mapper, &job)?;

    // Assemble the condensed matrix from row strips (rows arrive in
    // input order because run_map_stage preserves task order).
    let mut matrix = CondensedMatrix::build(n, |_, _| 0.0);
    for (row, strip) in rows {
        for (k, v) in strip.into_iter().enumerate() {
            matrix.set(row, row + 1 + k, f64::from(v));
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads() -> Vec<SeqRecord> {
        vec![
            SeqRecord::new("a", b"ACGTACGTACGTACGTTTTTGGGG".to_vec()),
            SeqRecord::new("b", b"ACGTACGTACGTACGTTTTTGGGG".to_vec()),
            SeqRecord::new("c", b"TTGGCCAATTGGCCAATTGGCCAA".to_vec()),
        ]
    }

    fn config() -> MrMcConfig {
        MrMcConfig {
            kmer: 5,
            num_hashes: 32,
            map_tasks: 2,
            ..Default::default()
        }
    }

    #[test]
    fn sketch_stage_preserves_order_and_determinism() {
        let mut p1 = Pipeline::new("t");
        let s1 = sketch_stage(&reads(), &config(), &mut p1).unwrap();
        let mut p2 = Pipeline::new("t");
        let s2 = sketch_stage(&reads(), &config(), &mut p2).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 3);
        assert_eq!(s1[0], s1[1]); // identical sequences, identical sketches
        assert_ne!(s1[0], s1[2]);
        assert_eq!(p1.stages().len(), 1);
    }

    #[test]
    fn similarity_matrix_matches_direct_computation() {
        let mut p = Pipeline::new("t");
        let cfg = config();
        let sketches = sketch_stage(&reads(), &cfg, &mut p).unwrap();
        let direct = CondensedMatrix::build(3, |i, j| {
            sketch_similarity(&sketches[i], &sketches[j], cfg.estimator)
        });
        let via_mr = similarity_matrix_stage(sketches, &cfg, &mut p).unwrap();
        assert_eq!(via_mr, direct);
        assert_eq!(via_mr.get(0, 1), 1.0);
        assert!(via_mr.get(0, 2) < 0.2);
    }

    #[test]
    fn degenerate_sketch_counted() {
        let mut p = Pipeline::new("t");
        let short = vec![SeqRecord::new("s", b"ACG".to_vec())]; // < k
        let cfg = config();
        let s = sketch_stage(&short, &cfg, &mut p).unwrap();
        assert!(s[0].is_degenerate());
    }

    #[test]
    fn estimators_differ_in_general() {
        let mut p = Pipeline::new("t");
        let cfg = config();
        let s = sketch_stage(&reads(), &cfg, &mut p).unwrap();
        // For identical sequences both estimators say 1.
        assert_eq!(sketch_similarity(&s[0], &s[1], Estimator::Positional), 1.0);
        assert_eq!(sketch_similarity(&s[0], &s[1], Estimator::SetBased), 1.0);
    }

    #[test]
    fn empty_input() {
        let mut p = Pipeline::new("t");
        let cfg = config();
        let s = sketch_stage(&[], &cfg, &mut p).unwrap();
        assert!(s.is_empty());
        let m = similarity_matrix_stage(s, &cfg, &mut p).unwrap();
        assert!(m.is_empty());
    }
}
