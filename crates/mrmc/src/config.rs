//! Configuration of a MrMC-MinH run.

use mrmc_cluster::Linkage;
use mrmc_minhash::BandingScheme;

/// Which clustering algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// MrMC-MinH<sup>g</sup>: Algorithm 1.
    Greedy,
    /// MrMC-MinH<sup>h</sup>: Algorithm 2.
    Hierarchical,
}

/// Sketch-similarity estimator (the ablation of DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Fraction of agreeing sketch positions (Eq. 3's collision
    /// probability; unbiased).
    Positional,
    /// `|values_a ∩ values_b| / |values_a ∪ values_b|` on sketch
    /// values, as literally written in Algorithm 1 line 9.
    SetBased,
}

/// How the pipeline finds the pairs whose similarity it evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateGen {
    /// Evaluate every pair (the paper's all-pairs stage). Exact by
    /// construction; O(n²) similarity evaluations.
    Dense,
    /// Banded-LSH pruning: sketches are cut into `bands` bands of
    /// `rows` hash values, reads sharing any band signature become
    /// candidates, and only candidates are verified. With the
    /// auto-tuned `(bands, rows)` (see [`BandingScheme::tune`]) every
    /// pair at or above θ is guaranteed to collide, so the pruning is
    /// lossless at the θ cut.
    Banded {
        /// Number of bands `b`.
        bands: usize,
        /// Hash values per band `r` (`b·r ≤ num_hashes`).
        rows: usize,
    },
}

/// How the banded stages serialize their shuffle payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// Plain typed records: `(band u32, signature u64)` keys and raw
    /// `u32`/`(u32, u32)` ids and pairs, priced at their fixed widths.
    /// Kept for byte-accounting comparisons (`shuffle_bench` runs the
    /// banded pipeline under both formats).
    Raw,
    /// Compact encoding (the default): bucket keys bit-packed to
    /// `band_bits + sig_bits` bits, read ids and candidate partners
    /// delta/varint-encoded as sorted [`mrmc_mapreduce::wire::IdRun`]
    /// payloads, combiner-side run merging, and similarity-aware
    /// partitioning (candidate pairs range-partitioned by their lower
    /// read id). Signature truncation to `sig_bits` can only merge
    /// buckets, so banding recall stays 1.0; the verify stage discards
    /// the (rare) extra candidates and clustering output is
    /// bit-identical to [`WireFormat::Raw`].
    Compact {
        /// Signature bits kept in the packed bucket key (1..=62).
        sig_bits: u32,
    },
}

/// Default signature width for [`WireFormat::Compact`]: with ≤ 4
/// bands the packed bucket key fits in 3 bytes, while the spurious
/// bucket-merge probability per same-band pair stays at 2⁻²².
pub const DEFAULT_SIG_BITS: u32 = 22;

impl Default for WireFormat {
    fn default() -> Self {
        WireFormat::Compact {
            sig_bits: DEFAULT_SIG_BITS,
        }
    }
}

/// All knobs of a run. The paper's defaults: k = 5 and n = 100 for
/// whole metagenomes (Table III), k = 15 and n = 50 for 16S
/// (Table V), θ = 0.95.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrMcConfig {
    /// k-mer size (`$KMER`).
    pub kmer: usize,
    /// Number of hash functions / sketch length (`$NUMHASH`).
    pub num_hashes: usize,
    /// Similarity threshold θ (`$CUTOFF`).
    pub theta: f64,
    /// Greedy or hierarchical.
    pub mode: Mode,
    /// Linkage policy for hierarchical mode (`$LINK`).
    pub linkage: Linkage,
    /// Similarity estimator.
    pub estimator: Estimator,
    /// Seed for the universal hash parameter draws.
    pub seed: u64,
    /// Use canonical (strand-independent) k-mers — the Mash-style
    /// extension for randomly-oriented shotgun reads; the paper's
    /// pipeline is strand-sensitive (false).
    pub canonical: bool,
    /// Map tasks for the sketching stage.
    pub map_tasks: usize,
    /// Worker threads (None = machine parallelism).
    pub workers: Option<usize>,
    /// Candidate generation: dense all-pairs (default, the paper's
    /// stage 2) or banded-LSH pruning.
    pub candidates: CandidateGen,
    /// Shuffle wire format for the banded stages (ignored by the
    /// dense path, which shuffles similarity rows, not buckets).
    pub wire: WireFormat,
}

impl Default for MrMcConfig {
    fn default() -> Self {
        MrMcConfig {
            kmer: 5,
            num_hashes: 100,
            theta: 0.95,
            mode: Mode::Hierarchical,
            linkage: Linkage::Average,
            estimator: Estimator::Positional,
            seed: 0x6d72_6d63, // "mrmc"
            canonical: false,
            map_tasks: 16,
            workers: None,
            candidates: CandidateGen::Dense,
            wire: WireFormat::default(),
        }
    }
}

impl MrMcConfig {
    /// The paper's whole-metagenome setting (Table III): k = 5,
    /// n = 100 hashes.
    pub fn whole_metagenome() -> MrMcConfig {
        MrMcConfig::default()
    }

    /// The paper's 16S setting (Table V): k = 15, n = 50 hashes,
    /// θ = 0.95.
    pub fn sixteen_s() -> MrMcConfig {
        MrMcConfig {
            kmer: 15,
            num_hashes: 50,
            ..Default::default()
        }
    }

    /// Switch to greedy mode.
    pub fn greedy(mut self) -> MrMcConfig {
        self.mode = Mode::Greedy;
        self
    }

    /// Switch to hierarchical mode.
    pub fn hierarchical(mut self) -> MrMcConfig {
        self.mode = Mode::Hierarchical;
        self
    }

    /// Set θ.
    pub fn with_theta(mut self, theta: f64) -> MrMcConfig {
        self.theta = theta;
        self
    }

    /// Switch to banded-LSH candidate pruning with `(bands, rows)`
    /// auto-tuned from `num_hashes` and θ so that recall at the θ cut
    /// is exactly 1 (the pigeonhole rule of [`BandingScheme::tune`]).
    pub fn banded(mut self) -> MrMcConfig {
        let scheme = BandingScheme::tune(self.num_hashes, self.theta);
        self.candidates = CandidateGen::Banded {
            bands: scheme.bands,
            rows: scheme.rows,
        };
        self
    }

    /// Switch to banded-LSH pruning with explicit `(bands, rows)` —
    /// for studying the recall/pruning trade-off off the exact point.
    pub fn banded_with(mut self, bands: usize, rows: usize) -> MrMcConfig {
        self.candidates = CandidateGen::Banded { bands, rows };
        self
    }

    /// Switch back to dense all-pairs candidates.
    pub fn dense(mut self) -> MrMcConfig {
        self.candidates = CandidateGen::Dense;
        self
    }

    /// Use the raw (uncompressed) shuffle wire format for the banded
    /// stages — the byte-accounting baseline.
    pub fn raw_wire(mut self) -> MrMcConfig {
        self.wire = WireFormat::Raw;
        self
    }

    /// Use the compact wire format with an explicit signature width.
    pub fn compact_wire(mut self, sig_bits: u32) -> MrMcConfig {
        self.wire = WireFormat::Compact { sig_bits };
        self
    }

    /// The banding scheme this config implies: the configured
    /// `(bands, rows)` in banded mode, the auto-tuned exact scheme
    /// otherwise.
    pub fn banding_scheme(&self) -> BandingScheme {
        match self.candidates {
            CandidateGen::Banded { bands, rows } => BandingScheme::new(bands, rows),
            CandidateGen::Dense => BandingScheme::tune(self.num_hashes, self.theta),
        }
    }

    /// Validate the knob ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.kmer == 0 || self.kmer > 31 {
            return Err(format!("kmer {} out of range 1..=31", self.kmer));
        }
        if self.num_hashes == 0 {
            return Err("num_hashes must be ≥ 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(format!("theta {} outside [0, 1]", self.theta));
        }
        if self.map_tasks == 0 {
            return Err("map_tasks must be ≥ 1".to_string());
        }
        if let CandidateGen::Banded { bands, rows } = self.candidates {
            if bands == 0 || rows == 0 {
                return Err("banding needs bands ≥ 1 and rows ≥ 1".to_string());
            }
            if bands * rows > self.num_hashes {
                return Err(format!(
                    "banding {bands}×{rows} exceeds the {} sketch positions",
                    self.num_hashes
                ));
            }
            if let WireFormat::Compact { sig_bits } = self.wire {
                // The packed key must fit band_bits + sig_bits in 64
                // bits; the codec itself re-checks, but failing at
                // validate() gives a better error.
                mrmc_mapreduce::wire::BandKeyCodec::new(bands, sig_bits)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let w = MrMcConfig::whole_metagenome();
        assert_eq!((w.kmer, w.num_hashes), (5, 100));
        let s = MrMcConfig::sixteen_s();
        assert_eq!((s.kmer, s.num_hashes), (15, 50));
        assert_eq!(s.theta, 0.95);
    }

    #[test]
    fn builders() {
        let c = MrMcConfig::default().greedy().with_theta(0.8);
        assert_eq!(c.mode, Mode::Greedy);
        assert_eq!(c.theta, 0.8);
        assert_eq!(c.hierarchical().mode, Mode::Hierarchical);
    }

    #[test]
    fn banded_builders_and_scheme() {
        assert_eq!(MrMcConfig::default().candidates, CandidateGen::Dense);
        // 16S preset: n = 50, θ = 0.95 → the exact pigeonhole scheme
        // is b = 3, r = 16.
        let c = MrMcConfig::sixteen_s().banded();
        assert_eq!(c.candidates, CandidateGen::Banded { bands: 3, rows: 16 });
        let s = c.banding_scheme();
        assert!(s.guarantees_recall(c.num_hashes, c.theta));
        assert!(c.validate().is_ok());
        assert_eq!(c.dense().candidates, CandidateGen::Dense);

        let manual = MrMcConfig::sixteen_s().banded_with(5, 10);
        assert_eq!(
            manual.candidates,
            CandidateGen::Banded { bands: 5, rows: 10 }
        );
        assert!(manual.validate().is_ok());
    }

    #[test]
    fn wire_knobs() {
        let c = MrMcConfig::sixteen_s().banded();
        assert_eq!(
            c.wire,
            WireFormat::Compact {
                sig_bits: DEFAULT_SIG_BITS
            }
        );
        assert!(c.validate().is_ok());
        assert_eq!(c.raw_wire().wire, WireFormat::Raw);
        let c = MrMcConfig::sixteen_s().banded().compact_wire(30);
        assert_eq!(c.wire, WireFormat::Compact { sig_bits: 30 });
        assert!(c.validate().is_ok());
        // Degenerate signature widths are rejected at validate():
        // 0 bits carries no bucket identity, and 3 bands need 2 band
        // bits so 64 signature bits cannot fit the packed key.
        let zero = MrMcConfig::sixteen_s().banded().compact_wire(0);
        assert!(zero.validate().is_err());
        let wide = MrMcConfig::sixteen_s().banded().compact_wire(64);
        assert!(wide.validate().is_err());
    }

    #[test]
    fn banded_validation() {
        // b·r beyond the sketch length is rejected.
        assert!(MrMcConfig::sixteen_s()
            .banded_with(10, 6)
            .validate()
            .is_err());
        assert!(MrMcConfig::sixteen_s()
            .banded_with(0, 5)
            .validate()
            .is_err());
        assert!(MrMcConfig::sixteen_s()
            .banded_with(5, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn validation() {
        assert!(MrMcConfig::default().validate().is_ok());
        assert!(MrMcConfig {
            kmer: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            kmer: 32,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            num_hashes: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            theta: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            map_tasks: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
