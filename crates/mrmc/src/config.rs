//! Configuration of a MrMC-MinH run.

use mrmc_cluster::Linkage;

/// Which clustering algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// MrMC-MinH<sup>g</sup>: Algorithm 1.
    Greedy,
    /// MrMC-MinH<sup>h</sup>: Algorithm 2.
    Hierarchical,
}

/// Sketch-similarity estimator (the ablation of DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Fraction of agreeing sketch positions (Eq. 3's collision
    /// probability; unbiased).
    Positional,
    /// `|values_a ∩ values_b| / |values_a ∪ values_b|` on sketch
    /// values, as literally written in Algorithm 1 line 9.
    SetBased,
}

/// All knobs of a run. The paper's defaults: k = 5 and n = 100 for
/// whole metagenomes (Table III), k = 15 and n = 50 for 16S
/// (Table V), θ = 0.95.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrMcConfig {
    /// k-mer size (`$KMER`).
    pub kmer: usize,
    /// Number of hash functions / sketch length (`$NUMHASH`).
    pub num_hashes: usize,
    /// Similarity threshold θ (`$CUTOFF`).
    pub theta: f64,
    /// Greedy or hierarchical.
    pub mode: Mode,
    /// Linkage policy for hierarchical mode (`$LINK`).
    pub linkage: Linkage,
    /// Similarity estimator.
    pub estimator: Estimator,
    /// Seed for the universal hash parameter draws.
    pub seed: u64,
    /// Use canonical (strand-independent) k-mers — the Mash-style
    /// extension for randomly-oriented shotgun reads; the paper's
    /// pipeline is strand-sensitive (false).
    pub canonical: bool,
    /// Map tasks for the sketching stage.
    pub map_tasks: usize,
    /// Worker threads (None = machine parallelism).
    pub workers: Option<usize>,
}

impl Default for MrMcConfig {
    fn default() -> Self {
        MrMcConfig {
            kmer: 5,
            num_hashes: 100,
            theta: 0.95,
            mode: Mode::Hierarchical,
            linkage: Linkage::Average,
            estimator: Estimator::Positional,
            seed: 0x6d72_6d63, // "mrmc"
            canonical: false,
            map_tasks: 16,
            workers: None,
        }
    }
}

impl MrMcConfig {
    /// The paper's whole-metagenome setting (Table III): k = 5,
    /// n = 100 hashes.
    pub fn whole_metagenome() -> MrMcConfig {
        MrMcConfig::default()
    }

    /// The paper's 16S setting (Table V): k = 15, n = 50 hashes,
    /// θ = 0.95.
    pub fn sixteen_s() -> MrMcConfig {
        MrMcConfig {
            kmer: 15,
            num_hashes: 50,
            ..Default::default()
        }
    }

    /// Switch to greedy mode.
    pub fn greedy(mut self) -> MrMcConfig {
        self.mode = Mode::Greedy;
        self
    }

    /// Switch to hierarchical mode.
    pub fn hierarchical(mut self) -> MrMcConfig {
        self.mode = Mode::Hierarchical;
        self
    }

    /// Set θ.
    pub fn with_theta(mut self, theta: f64) -> MrMcConfig {
        self.theta = theta;
        self
    }

    /// Validate the knob ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.kmer == 0 || self.kmer > 31 {
            return Err(format!("kmer {} out of range 1..=31", self.kmer));
        }
        if self.num_hashes == 0 {
            return Err("num_hashes must be ≥ 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(format!("theta {} outside [0, 1]", self.theta));
        }
        if self.map_tasks == 0 {
            return Err("map_tasks must be ≥ 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let w = MrMcConfig::whole_metagenome();
        assert_eq!((w.kmer, w.num_hashes), (5, 100));
        let s = MrMcConfig::sixteen_s();
        assert_eq!((s.kmer, s.num_hashes), (15, 50));
        assert_eq!(s.theta, 0.95);
    }

    #[test]
    fn builders() {
        let c = MrMcConfig::default().greedy().with_theta(0.8);
        assert_eq!(c.mode, Mode::Greedy);
        assert_eq!(c.theta, 0.8);
        assert_eq!(c.hierarchical().mode, Mode::Hierarchical);
    }

    #[test]
    fn validation() {
        assert!(MrMcConfig::default().validate().is_ok());
        assert!(MrMcConfig {
            kmer: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            kmer: 32,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            num_hashes: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            theta: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MrMcConfig {
            map_tasks: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
