//! Banded-LSH candidate pruning (DESIGN.md §kernels, "candidate
//! pruning").
//!
//! Replaces the O(n²) all-pairs stage with three Map-Reduce stages:
//!
//! 1. **band-signatures** — each mapper cuts a read's sketch into `b`
//!    bands of `r` rows and emits `(band, signature) → read_id`; the
//!    *real* hash-partitioned shuffle groups reads by bucket, and the
//!    reducer emits every in-bucket pair;
//! 2. **candidate-dedup** — pairs found by several bands are collapsed
//!    to one candidate by a second shuffle keyed on the pair itself;
//! 3. **candidate-verify** — a map-only stage evaluates the exact
//!    sketch similarity of each candidate and keeps only edges with
//!    `sim ≥ θ`, yielding a [`SparseSimGraph`].
//!
//! With the auto-tuned scheme ([`BandingScheme::tune`]) every pair at
//! or above θ shares at least one literally-equal band, so the graph
//! holds *exactly* the pairs a dense run would accept — pruning is
//! lossless at the θ cut and clustering results match bit for bit.
//!
//! # Wire formats
//!
//! The stages run in one of two shuffle encodings, selected by
//! [`WireFormat`] on the config (DESIGN.md §3a "wire format"):
//!
//! * **Raw** — the stages above, shuffling `(band u32, sig u64)` keys,
//!   raw `u32` ids and `(u32, u32)` pairs at fixed widths;
//! * **Compact** (default) — bucket keys bit-packed by a
//!   [`BandKeyCodec`] (band index in the top bits, signature truncated
//!   to `sig_bits` low bits), read ids and candidate partners carried
//!   as delta/varint-encoded [`IdRun`] payloads merged by a map-side
//!   combiner, and the candidate-dedup stage re-keyed on the *lower
//!   read id* with range partitioning, so a read's whole similarity
//!   neighborhood lands on one reducer as a single compressed run.
//!
//! Signature truncation can only merge buckets, never split them, so
//! compact recall is still exactly 1.0; spurious merges add candidates
//! which the verify stage discards, leaving the final graph (and the
//! clustering built from it) bit-identical across formats.

use mrmc_cluster::SparseSimGraph;
use mrmc_mapreduce::chaos::{FaultInjector, NoFaults};
use mrmc_mapreduce::job::{Combiner, JobConfig, Mapper, Reducer, TaskContext};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_mapreduce::wire::{uvarint_len, BandKeyCodec, IdRun};
use mrmc_mapreduce::MrError;
use mrmc_minhash::{BandingScheme, Sketch};

use crate::config::{MrMcConfig, WireFormat};
use crate::stages::sketch_similarity;

/// Read indices travel the banded shuffle as `u32`; reject inputs the
/// packing cannot represent instead of silently truncating them.
pub fn ensure_read_ids_fit(num_reads: usize) -> Result<(), MrError> {
    if num_reads > u32::MAX as usize {
        return Err(MrError::BadConfig(format!(
            "{num_reads} reads exceed the u32 read-id space of the banded shuffle"
        )));
    }
    Ok(())
}

/// Stage-1 mapper: read index → `(band, signature) → read_id` pairs.
/// Borrows the sketch list (scoped-thread engine), so map input is
/// just the index even across task retries.
struct BandSignatureMapper<'a> {
    scheme: BandingScheme,
    sketches: &'a [Sketch],
}

impl Mapper for BandSignatureMapper<'_> {
    type InKey = usize;
    type InValue = ();
    type OutKey = (u32, u64);
    type OutValue = u32;

    fn map(&self, key: usize, _v: (), ctx: &mut TaskContext<(u32, u64), u32>) {
        let values = self.sketches[key].values();
        for band in 0..self.scheme.bands {
            let sig = self.scheme.signature(band, values);
            ctx.emit((band as u32, sig), key as u32);
        }
        ctx.count("BAND_SIGNATURES", self.scheme.bands as u64);
    }
}

/// Stage-1 reducer: one bucket's reads → all in-bucket pairs. Ids are
/// sorted and deduped first (a retried map attempt must not double a
/// read), so output is deterministic regardless of shuffle arrival
/// order.
struct BucketPairReducer;

impl Reducer for BucketPairReducer {
    type InKey = (u32, u64);
    type InValue = u32;
    type OutKey = (u32, u32);
    type OutValue = ();

    fn reduce(&self, _key: (u32, u64), mut ids: Vec<u32>, ctx: &mut TaskContext<(u32, u32), ()>) {
        ids.sort_unstable();
        ids.dedup();
        let mut pairs = 0u64;
        for (a, &i) in ids.iter().enumerate() {
            for &j in &ids[a + 1..] {
                ctx.emit((i, j), ());
                pairs += 1;
            }
        }
        ctx.count("BUCKET_PAIRS", pairs);
    }
}

/// Stage-2 mapper: identity on pairs — the work is the shuffle, which
/// regroups by pair so duplicates across bands land in one reducer.
struct PairIdentityMapper;

impl Mapper for PairIdentityMapper {
    type InKey = (u32, u32);
    type InValue = ();
    type OutKey = (u32, u32);
    type OutValue = ();

    fn map(&self, key: (u32, u32), _v: (), ctx: &mut TaskContext<(u32, u32), ()>) {
        ctx.emit(key, ());
    }
}

/// Stage-2 reducer: collapse a pair's occurrences (one per colliding
/// band) to a single candidate.
struct DedupReducer;

impl Reducer for DedupReducer {
    type InKey = (u32, u32);
    type InValue = ();
    type OutKey = (u32, u32);
    type OutValue = ();

    fn reduce(&self, key: (u32, u32), hits: Vec<()>, ctx: &mut TaskContext<(u32, u32), ()>) {
        ctx.emit(key, ());
        ctx.count("CANDIDATES_EMITTED", 1);
        ctx.count("CANDIDATE_DUPLICATES", hits.len() as u64 - 1);
    }
}

/// Stage-3 mapper: verify one candidate with the exact sketch
/// estimator, emitting the edge only when it clears θ.
struct VerifyMapper<'a> {
    sketches: &'a [Sketch],
    config: MrMcConfig,
}

impl Mapper for VerifyMapper<'_> {
    type InKey = usize;
    type InValue = (u32, u32);
    type OutKey = (u32, u32);
    type OutValue = f32;

    fn map(&self, _k: usize, (i, j): (u32, u32), ctx: &mut TaskContext<(u32, u32), f32>) {
        let sim = sketch_similarity(
            &self.sketches[i as usize],
            &self.sketches[j as usize],
            self.config.estimator,
        );
        ctx.count("PAIRS_COMPUTED", 1);
        if sim >= self.config.theta {
            ctx.emit((i, j), sim as f32);
            ctx.count("EDGES_EMITTED", 1);
        }
    }
}

/// Compact stage-1 mapper: read index → packed bucket key with a
/// singleton [`IdRun`] payload. Key bytes are the packed width, value
/// bytes the exact run encoding — so SHUFFLE_BYTES is the true
/// compact-wire volume.
struct CompactBandMapper<'a> {
    scheme: BandingScheme,
    codec: BandKeyCodec,
    sketches: &'a [Sketch],
}

impl Mapper for CompactBandMapper<'_> {
    type InKey = usize;
    type InValue = ();
    type OutKey = u64;
    type OutValue = IdRun;

    fn map(&self, key: usize, _v: (), ctx: &mut TaskContext<u64, IdRun>) {
        let id = u32::try_from(key).expect("read ids checked against u32 upstream");
        let values = self.sketches[key].values();
        for band in 0..self.scheme.bands {
            let sig = self.scheme.signature(band, values);
            // Arena-backed: the singleton run is a bump-pointer write
            // into the task's shared chunk, byte-identical to
            // `IdRun::singleton(id)`.
            ctx.emit_singleton_run(self.codec.pack(band as u32, sig), id);
        }
        ctx.count("BAND_SIGNATURES", self.scheme.bands as u64);
    }

    fn key_wire_size(&self, _key: &u64) -> usize {
        self.codec.wire_bytes()
    }

    fn value_wire_size(&self, value: &IdRun) -> usize {
        value.wire_len()
    }

    fn partition(&self, key: &u64, reducers: usize) -> usize {
        // Similarity-aware assignment: partition by the signature bits
        // alone (mask the band off), so co-bucketed keys — buckets
        // carrying the same signature value — always land on the same
        // reducer, deterministically and without hashing.
        (key & self.codec.sig_mask()) as usize % reducers
    }
}

/// Map-side combiner for [`IdRun`] payloads: collapse a key's local
/// singleton runs into one sorted, deduped run before the shuffle.
/// Idempotent with the reducers, which re-merge across map tasks.
struct IdRunCombiner;

impl Combiner for IdRunCombiner {
    type Key = u64;
    type Value = IdRun;

    fn combine(&self, _key: &u64, values: Vec<IdRun>) -> Vec<IdRun> {
        vec![IdRun::merge(&values).expect("combiner input runs are well-formed")]
    }
}

/// [`IdRunCombiner`] keyed by a `u32` read id (stage 2).
struct IdRunCombinerU32;

impl Combiner for IdRunCombinerU32 {
    type Key = u32;
    type Value = IdRun;

    fn combine(&self, _key: &u32, values: Vec<IdRun>) -> Vec<IdRun> {
        vec![IdRun::merge(&values).expect("combiner input runs are well-formed")]
    }
}

/// Compact stage-1 reducer: decode and merge one bucket's id runs,
/// then emit every in-bucket pair — the fetch-retry path re-fetches
/// these *encoded* runs, and a re-executed map re-encodes them
/// deterministically, so a retry decodes to identical groups.
struct CompactBucketReducer;

impl Reducer for CompactBucketReducer {
    type InKey = u64;
    type InValue = IdRun;
    type OutKey = (u32, u32);
    type OutValue = ();

    fn reduce(&self, _key: u64, runs: Vec<IdRun>, ctx: &mut TaskContext<(u32, u32), ()>) {
        let merged = IdRun::merge(&runs).expect("shuffled runs decode");
        // Triangular pair expansion over nested cursors: the inner
        // cursor clones the outer's position, so the merged run is
        // walked in place and never decoded into a `Vec<u32>`.
        let mut pairs = 0u64;
        let mut outer = merged.cursor().expect("merged run is canonical");
        while let Some(i) = outer.try_next().expect("merged run decodes") {
            let mut inner = outer.clone();
            while let Some(j) = inner.try_next().expect("merged run decodes") {
                ctx.emit((i, j), ());
                pairs += 1;
            }
        }
        ctx.count("BUCKET_PAIRS", pairs);
    }
}

/// Compact stage-2 mapper: re-key each bucket pair `(i, j)` on its
/// lower read id, carrying the partner as a singleton run. With the
/// combiner this turns a read's candidate list into one delta-encoded
/// run per map task instead of a raw `(u32, u32)` per occurrence.
struct NeighborRunMapper {
    total_reads: usize,
}

impl Mapper for NeighborRunMapper {
    type InKey = (u32, u32);
    type InValue = ();
    type OutKey = u32;
    type OutValue = IdRun;

    fn map(&self, (i, j): (u32, u32), _v: (), ctx: &mut TaskContext<u32, IdRun>) {
        ctx.emit_singleton_run(i, j);
    }

    fn key_wire_size(&self, key: &u32) -> usize {
        uvarint_len(u64::from(*key))
    }

    fn value_wire_size(&self, value: &IdRun) -> usize {
        value.wire_len()
    }

    fn partition(&self, key: &u32, reducers: usize) -> usize {
        // Range partitioning by read id: every candidate of read `i`
        // colocates on one reducer (its similarity neighborhood), and
        // reduce output comes out globally sorted by `(i, j)`.
        ((*key as usize * reducers) / self.total_reads.max(1)).min(reducers - 1)
    }
}

/// Compact stage-2 reducer: merge a read's partner runs, dedup, and
/// emit one candidate per distinct partner. The duplicate count is the
/// cross-band collisions the combiner could not see (different map
/// tasks), matching the raw path's CANDIDATE_DUPLICATES semantics.
struct NeighborDedupReducer;

impl Reducer for NeighborDedupReducer {
    type InKey = u32;
    type InValue = IdRun;
    type OutKey = (u32, u32);
    type OutValue = ();

    fn reduce(&self, i: u32, runs: Vec<IdRun>, ctx: &mut TaskContext<(u32, u32), ()>) {
        let total: u64 = runs
            .iter()
            .map(|r| r.try_count().expect("run count prefix decodes"))
            .sum();
        let merged = IdRun::merge(&runs).expect("shuffled runs decode");
        // The merged run is canonical, so its count prefix is exact:
        // no decode needed for the duplicate accounting, and the
        // partner walk streams over the encoded bytes in place.
        let partners = merged.try_count().expect("merged run is canonical");
        ctx.count("CANDIDATES_EMITTED", partners);
        ctx.count("CANDIDATE_DUPLICATES", total - partners);
        let mut cur = merged.cursor().expect("merged run is canonical");
        while let Some(j) = cur.try_next().expect("merged run decodes") {
            ctx.emit((i, j), ());
        }
    }
}

fn job_for(config: &MrMcConfig, name: &str) -> JobConfig {
    let mut job = JobConfig::named(name)
        .attempts(4)
        .reducers(config.map_tasks);
    if let Some(w) = config.workers {
        job = job.workers(w);
    }
    job
}

/// Run stages 1–2: band the sketches and return the deduped candidate
/// pair list, sorted.
pub fn banded_candidates(
    sketches: &[Sketch],
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
) -> Result<Vec<(u32, u32)>, MrError> {
    banded_candidates_with(sketches, config, pipeline, &NoFaults)
}

/// [`banded_candidates`] under a fault injector.
pub fn banded_candidates_with(
    sketches: &[Sketch],
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
    injector: &dyn FaultInjector,
) -> Result<Vec<(u32, u32)>, MrError> {
    ensure_read_ids_fit(sketches.len())?;
    let scheme = config.banding_scheme();
    let input: Vec<(usize, ())> = (0..sketches.len()).map(|i| (i, ())).collect();
    let deduped = match config.wire {
        WireFormat::Raw => {
            let mapper = BandSignatureMapper { scheme, sketches };
            let bucket_pairs = pipeline.run_stage_with_faults(
                input,
                config.map_tasks,
                &mapper,
                &BucketPairReducer,
                &job_for(config, "band-signatures"),
                injector,
            )?;
            pipeline.run_stage_with_faults(
                bucket_pairs,
                config.map_tasks,
                &PairIdentityMapper,
                &DedupReducer,
                &job_for(config, "candidate-dedup"),
                injector,
            )?
        }
        WireFormat::Compact { sig_bits } => {
            let codec = BandKeyCodec::new(scheme.bands, sig_bits).map_err(MrError::BadConfig)?;
            let mapper = CompactBandMapper {
                scheme,
                codec,
                sketches,
            };
            let mut bucket_pairs = pipeline.run_stage_with_combiner_and_faults(
                input,
                config.map_tasks,
                &mapper,
                &IdRunCombiner,
                &CompactBucketReducer,
                &job_for(config, "band-signatures"),
                injector,
            )?;
            // Total-order handoff: sorting the pair stream makes
            // cross-band duplicates of the same pair adjacent, so the
            // stage-2 input splits hand them to one map task and the
            // combiner eliminates them before they reach the wire.
            bucket_pairs.sort_unstable();
            pipeline.run_stage_with_combiner_and_faults(
                bucket_pairs,
                config.map_tasks,
                &NeighborRunMapper {
                    total_reads: sketches.len(),
                },
                &IdRunCombinerU32,
                &NeighborDedupReducer,
                &job_for(config, "candidate-dedup"),
                injector,
            )?
        }
    };
    let mut candidates: Vec<(u32, u32)> = deduped.into_iter().map(|(p, ())| p).collect();
    candidates.sort_unstable();
    Ok(candidates)
}

/// Run the full candidate pipeline (stages 1–3) and return the sparse
/// θ-graph: exactly the pairs whose verified similarity clears θ,
/// restricted to banding candidates — the full truth set under the
/// exact-recall scheme.
pub fn banded_graph_stage(
    sketches: &[Sketch],
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
) -> Result<SparseSimGraph, MrError> {
    banded_graph_stage_with(sketches, config, pipeline, &NoFaults)
}

/// [`banded_graph_stage`] under a fault injector.
pub fn banded_graph_stage_with(
    sketches: &[Sketch],
    config: &MrMcConfig,
    pipeline: &mut Pipeline,
    injector: &dyn FaultInjector,
) -> Result<SparseSimGraph, MrError> {
    let candidates = banded_candidates_with(sketches, config, pipeline, injector)?;
    let mapper = VerifyMapper {
        sketches,
        config: *config,
    };
    let input: Vec<(usize, (u32, u32))> = candidates.into_iter().enumerate().collect();
    // More, smaller tasks than the banding stages — verification is
    // the compute-heavy step, like the dense row blocks.
    let tasks = (config.map_tasks * 4).min(input.len().max(1));
    let edges = pipeline.run_map_stage_with_faults(
        input,
        tasks,
        &mapper,
        &job_for(config, "candidate-verify"),
        injector,
    )?;
    Ok(SparseSimGraph::from_edges(
        sketches.len(),
        edges.into_iter().map(|((i, j), s)| (i, j, s)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::stages::sketch_stage;
    use mrmc_seqio::SeqRecord;

    fn reads() -> Vec<SeqRecord> {
        // Two identical pairs and one outlier.
        vec![
            SeqRecord::new("a1", b"ACGTACGTACGTACGTTTTTGGGG".to_vec()),
            SeqRecord::new("a2", b"ACGTACGTACGTACGTTTTTGGGG".to_vec()),
            SeqRecord::new("b1", b"TTGGCCAATTGGCCAATTGGCCAA".to_vec()),
            SeqRecord::new("b2", b"TTGGCCAATTGGCCAATTGGCCAA".to_vec()),
        ]
    }

    fn config() -> MrMcConfig {
        MrMcConfig {
            kmer: 5,
            num_hashes: 32,
            theta: 0.95,
            mode: Mode::Greedy,
            map_tasks: 2,
            ..Default::default()
        }
        .banded()
    }

    #[test]
    fn candidates_match_naive_collision_scan() {
        let cfg = config();
        let mut p = Pipeline::new("t");
        let sketches = sketch_stage(&reads(), &cfg, &mut p).unwrap();
        let got = banded_candidates(&sketches, &cfg, &mut p).unwrap();
        let scheme = cfg.banding_scheme();
        let mut want = Vec::new();
        for i in 0..sketches.len() {
            for j in i + 1..sketches.len() {
                if scheme.collides(&sketches[i], &sketches[j]) {
                    want.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(got, want);
        // The identical pairs must be candidates.
        assert!(got.contains(&(0, 1)));
        assert!(got.contains(&(2, 3)));
    }

    #[test]
    fn graph_holds_exactly_the_verified_edges() {
        let cfg = config();
        let mut p = Pipeline::new("t");
        let sketches = sketch_stage(&reads(), &cfg, &mut p).unwrap();
        let graph = banded_graph_stage(&sketches, &cfg, &mut p).unwrap();
        assert_eq!(graph.len(), 4);
        assert_eq!(graph.sim(0, 1), 1.0);
        assert_eq!(graph.sim(2, 3), 1.0);
        assert_eq!(graph.sim(0, 2), 0.0, "cross-species pair pruned");
        // Stage accounting: 3 banded stages after the sketch stage.
        assert_eq!(p.stages().len(), 4);
        let verified = p.counter_total("PAIRS_COMPUTED");
        assert_eq!(verified, p.counter_total("CANDIDATES_EMITTED"));
        assert!(verified <= 6, "pruning cannot exceed all pairs");
        assert_eq!(p.counter_total("EDGES_EMITTED"), 2);
        // Banding stages really shuffle.
        assert!(p.stages()[1].shuffled_pairs > 0);
        assert!(p.stages()[1].shuffled_bytes > 0);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let cfg = config();
        let mut p = Pipeline::new("t");
        let g = banded_graph_stage(&[], &cfg, &mut p).unwrap();
        assert!(g.is_empty());
        let sketches = sketch_stage(&reads()[..1], &cfg, &mut p).unwrap();
        let g = banded_graph_stage(&sketches, &cfg, &mut p).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
