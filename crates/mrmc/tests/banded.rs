//! Integration tests of the banded-LSH candidate pipeline: the
//! exactness contract (banded == dense, bit for bit), the candidate
//! oracle, dedup completeness, and fault recovery through the banding
//! reducers.

use mrmc::banded::{
    banded_candidates, banded_candidates_with, banded_graph_stage, banded_graph_stage_with,
    ensure_read_ids_fit,
};
use mrmc::stages::{sketch_similarity, sketch_stage};
use mrmc::{Mode, MrMcConfig, MrMcMinH, WireFormat};
use mrmc_mapreduce::chaos::{FaultPlan, Phase};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_minhash::Sketch;
use mrmc_simulate::huse_16s;

fn corpus(reads: f64, seed: u64) -> Vec<mrmc_seqio::SeqRecord> {
    huse_16s(0.03, reads / 345_000.0, seed).reads
}

fn sketches_of(reads: &[mrmc_seqio::SeqRecord], cfg: &MrMcConfig) -> Vec<Sketch> {
    let mut p = Pipeline::new("test-sketch");
    sketch_stage(reads, cfg, &mut p).expect("sketch stage")
}

/// The tentpole contract: on the seed 16S corpus, the banded pipeline
/// produces *bit-identical* cluster assignments to the dense oracle in
/// both clustering modes, at the default auto-tuned scheme.
#[test]
fn banded_clustering_identical_to_dense() {
    let reads = corpus(280.0, 9);
    for mode in [Mode::Greedy, Mode::Hierarchical] {
        let dense = MrMcMinH::new(MrMcConfig {
            mode,
            ..MrMcConfig::sixteen_s()
        })
        .run(&reads)
        .expect("dense run");
        let banded = MrMcMinH::new(
            MrMcConfig {
                mode,
                ..MrMcConfig::sixteen_s()
            }
            .banded(),
        )
        .run(&reads)
        .expect("banded run");
        assert_eq!(
            banded.assignment, dense.assignment,
            "{mode:?}: banded assignments must match dense"
        );
        assert_eq!(banded.num_clusters(), dense.num_clusters());
    }
}

/// Stages 1–2 emit exactly the pairs the collision oracle accepts:
/// no false drops (the superset property survives the shuffle) and no
/// duplicates (the dedup stage emits each pair once).
#[test]
fn candidates_match_collision_oracle_and_are_unique() {
    let cfg = MrMcConfig::sixteen_s().banded();
    let reads = corpus(200.0, 11);
    let sketches = sketches_of(&reads, &cfg);

    let mut p = Pipeline::new("test-candidates");
    let candidates = banded_candidates(&sketches, &cfg, &mut p).expect("banded stages");

    let scheme = cfg.banding_scheme();
    let mut oracle = Vec::new();
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            if scheme.collides(&sketches[i], &sketches[j]) {
                oracle.push((i as u32, j as u32));
            }
        }
    }
    assert_eq!(candidates, oracle, "candidate list must equal the oracle");

    let mut deduped = candidates.clone();
    deduped.dedup();
    assert_eq!(deduped.len(), candidates.len(), "no duplicate pairs");
    assert!(candidates.windows(2).all(|w| w[0] < w[1]), "sorted output");
}

/// The sparse graph holds exactly the θ-edges of the dense truth scan:
/// recall 1.0 (pigeonhole guarantee) and precision 1.0 (the verify
/// stage applies the same `sim ≥ θ` test), with identical weights.
#[test]
fn sparse_graph_equals_dense_truth() {
    let cfg = MrMcConfig::sixteen_s().banded();
    let reads = corpus(200.0, 13);
    let sketches = sketches_of(&reads, &cfg);

    let mut p = Pipeline::new("test-graph");
    let graph = banded_graph_stage(&sketches, &cfg, &mut p).expect("banded stages");

    let mut truth = 0usize;
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            let sim = sketch_similarity(&sketches[i], &sketches[j], cfg.estimator);
            if sim >= cfg.theta {
                truth += 1;
                assert_eq!(
                    graph.sim(i, j),
                    (sim as f32) as f64,
                    "edge ({i},{j}) must carry the verified similarity"
                );
            } else {
                assert_eq!(graph.sim(i, j), 0.0, "({i},{j}) is below θ");
            }
        }
    }
    assert_eq!(graph.num_edges(), truth, "recall and precision 1.0");
}

/// Task panics in the banding *reducers* (bucket collection and pair
/// dedup) and the verify mappers must be recovered with a
/// bit-identical graph — the pipeline's new reduce-phase recovery
/// surface.
#[test]
fn reducer_faults_recover_bit_identical() {
    let cfg = MrMcConfig::sixteen_s().banded();
    let reads = corpus(150.0, 17);
    let sketches = sketches_of(&reads, &cfg);

    let mut clean_p = Pipeline::new("test-clean");
    let clean = banded_graph_stage(&sketches, &cfg, &mut clean_p).expect("clean run");

    // Job ordinals under this injector: 0 = band-signatures,
    // 1 = candidate-dedup, 2 = verify.
    let inj = FaultPlan::new()
        .task_panic(0, Phase::Reduce, 0, 2)
        .task_panic(1, Phase::Reduce, 1, 1)
        .task_panic(2, Phase::Map, 0, 1)
        .injector();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut faulty_p = Pipeline::new("test-faulty");
    let faulty = banded_graph_stage_with(&sketches, &cfg, &mut faulty_p, &inj);
    std::panic::set_hook(hook);

    let faulty = faulty.expect("faults within the retry budget must recover");
    assert_eq!(faulty, clean, "recovered graph must be bit-identical");
    assert!(
        faulty_p.total_recovery().tasks_retried >= 4,
        "the injected failures must show up in the ledger"
    );
}

/// The two wire formats are interchangeable where it matters: same
/// candidate set, same verified graph — while the compact encoding
/// moves strictly fewer shuffle bytes through both banding stages.
#[test]
fn raw_and_compact_wire_agree_with_fewer_bytes() {
    let reads = corpus(220.0, 21);
    let compact_cfg = MrMcConfig::sixteen_s().banded();
    assert!(matches!(compact_cfg.wire, WireFormat::Compact { .. }));
    let raw_cfg = compact_cfg.raw_wire();
    let sketches = sketches_of(&reads, &compact_cfg);

    let mut raw_p = Pipeline::new("test-raw-wire");
    let raw = banded_candidates(&sketches, &raw_cfg, &mut raw_p).expect("raw run");
    let mut compact_p = Pipeline::new("test-compact-wire");
    let compact = banded_candidates(&sketches, &compact_cfg, &mut compact_p).expect("compact run");
    assert_eq!(raw, compact, "candidate sets must agree across formats");

    // Stages 0–1 of each pipeline are band-signatures/candidate-dedup.
    for stage in 0..2 {
        let (r, c) = (&raw_p.stages()[stage], &compact_p.stages()[stage]);
        assert!(
            c.shuffled_bytes < r.shuffled_bytes,
            "stage {stage}: compact {} bytes must undercut raw {}",
            c.shuffled_bytes,
            r.shuffled_bytes
        );
    }

    let mut raw_g = Pipeline::new("g-raw");
    let mut compact_g = Pipeline::new("g-compact");
    let graph_raw = banded_graph_stage(&sketches, &raw_cfg, &mut raw_g).expect("raw graph");
    let graph_compact =
        banded_graph_stage(&sketches, &compact_cfg, &mut compact_g).expect("compact graph");
    assert_eq!(graph_raw, graph_compact, "graphs bit-identical");
}

/// Shuffle fetch failures past the retry limit force map re-execution;
/// the re-executed maps re-encode their id runs deterministically, so
/// the retried fetch decodes to identical groups and the final graph
/// is bit-identical — the chaos contract with the compact wire format
/// enabled (both banding stages lose an output).
#[test]
fn fetch_failures_recover_bit_identical_with_compact_wire() {
    let cfg = MrMcConfig::sixteen_s().banded();
    assert!(matches!(cfg.wire, WireFormat::Compact { .. }));
    let reads = corpus(150.0, 23);
    let sketches = sketches_of(&reads, &cfg);

    let mut clean_p = Pipeline::new("test-clean-fetch");
    let clean = banded_graph_stage(&sketches, &cfg, &mut clean_p).expect("clean run");

    // Job ordinals: 0 = band-signatures, 1 = candidate-dedup. Five
    // failures exceed FETCH_RETRY_LIMIT, declaring the map output lost.
    let inj = FaultPlan::new()
        .shuffle_fetch_fail(0, 1, 0, 5)
        .shuffle_fetch_fail(1, 0, 1, 5)
        .injector();
    let mut faulty_p = Pipeline::new("test-faulty-fetch");
    let faulty = banded_graph_stage_with(&sketches, &cfg, &mut faulty_p, &inj)
        .expect("fetch failures must recover");
    assert_eq!(faulty, clean, "recovered graph must be bit-identical");
    assert_eq!(
        faulty_p.total_recovery().maps_reexecuted_fetch_fail,
        2,
        "both lost map outputs must be re-executed"
    );
    assert!(faulty_p.total_recovery().shuffle_fetch_retries >= 2);
}

/// The u32 read-id guard: the helper rejects inputs past u32::MAX and
/// accepts everything the shuffle can actually address.
#[test]
fn read_id_guard() {
    assert!(ensure_read_ids_fit(0).is_ok());
    assert!(ensure_read_ids_fit(u32::MAX as usize).is_ok());
    let err = ensure_read_ids_fit(u32::MAX as usize + 1).unwrap_err();
    assert!(err.to_string().contains("u32 read-id space"), "{err}");

    // The pipeline surfaces the same guard (trivially satisfiable
    // here; the guard sits on the entry path of both formats).
    let cfg = MrMcConfig::sixteen_s().banded();
    let mut p = Pipeline::new("test-guard");
    assert!(banded_candidates_with(&[], &cfg, &mut p, &mrmc_mapreduce::chaos::NoFaults).is_ok());
}

/// Degenerate inputs: empty and single-read corpora produce empty
/// graphs without panicking, in both the candidate and graph APIs.
#[test]
fn degenerate_inputs() {
    let cfg = MrMcConfig::sixteen_s().banded();
    for n in [0usize, 1] {
        let reads = corpus(200.0, 3);
        let sketches = sketches_of(&reads[..n.min(reads.len())], &cfg);
        let mut p = Pipeline::new("test-degenerate");
        let candidates = banded_candidates(&sketches, &cfg, &mut p).expect("candidates");
        assert!(candidates.is_empty());
        let graph = banded_graph_stage(&sketches, &cfg, &mut p).expect("graph");
        assert_eq!(graph.num_edges(), 0);
    }
}
