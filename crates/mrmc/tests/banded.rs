//! Integration tests of the banded-LSH candidate pipeline: the
//! exactness contract (banded == dense, bit for bit), the candidate
//! oracle, dedup completeness, and fault recovery through the banding
//! reducers.

use mrmc::banded::{banded_candidates, banded_graph_stage, banded_graph_stage_with};
use mrmc::stages::{sketch_similarity, sketch_stage};
use mrmc::{Mode, MrMcConfig, MrMcMinH};
use mrmc_mapreduce::chaos::{FaultPlan, Phase};
use mrmc_mapreduce::pipeline::Pipeline;
use mrmc_minhash::Sketch;
use mrmc_simulate::huse_16s;

fn corpus(reads: f64, seed: u64) -> Vec<mrmc_seqio::SeqRecord> {
    huse_16s(0.03, reads / 345_000.0, seed).reads
}

fn sketches_of(reads: &[mrmc_seqio::SeqRecord], cfg: &MrMcConfig) -> Vec<Sketch> {
    let mut p = Pipeline::new("test-sketch");
    sketch_stage(reads, cfg, &mut p).expect("sketch stage")
}

/// The tentpole contract: on the seed 16S corpus, the banded pipeline
/// produces *bit-identical* cluster assignments to the dense oracle in
/// both clustering modes, at the default auto-tuned scheme.
#[test]
fn banded_clustering_identical_to_dense() {
    let reads = corpus(280.0, 9);
    for mode in [Mode::Greedy, Mode::Hierarchical] {
        let dense = MrMcMinH::new(MrMcConfig {
            mode,
            ..MrMcConfig::sixteen_s()
        })
        .run(&reads)
        .expect("dense run");
        let banded = MrMcMinH::new(
            MrMcConfig {
                mode,
                ..MrMcConfig::sixteen_s()
            }
            .banded(),
        )
        .run(&reads)
        .expect("banded run");
        assert_eq!(
            banded.assignment, dense.assignment,
            "{mode:?}: banded assignments must match dense"
        );
        assert_eq!(banded.num_clusters(), dense.num_clusters());
    }
}

/// Stages 1–2 emit exactly the pairs the collision oracle accepts:
/// no false drops (the superset property survives the shuffle) and no
/// duplicates (the dedup stage emits each pair once).
#[test]
fn candidates_match_collision_oracle_and_are_unique() {
    let cfg = MrMcConfig::sixteen_s().banded();
    let reads = corpus(200.0, 11);
    let sketches = sketches_of(&reads, &cfg);

    let mut p = Pipeline::new("test-candidates");
    let candidates = banded_candidates(&sketches, &cfg, &mut p).expect("banded stages");

    let scheme = cfg.banding_scheme();
    let mut oracle = Vec::new();
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            if scheme.collides(&sketches[i], &sketches[j]) {
                oracle.push((i as u32, j as u32));
            }
        }
    }
    assert_eq!(candidates, oracle, "candidate list must equal the oracle");

    let mut deduped = candidates.clone();
    deduped.dedup();
    assert_eq!(deduped.len(), candidates.len(), "no duplicate pairs");
    assert!(candidates.windows(2).all(|w| w[0] < w[1]), "sorted output");
}

/// The sparse graph holds exactly the θ-edges of the dense truth scan:
/// recall 1.0 (pigeonhole guarantee) and precision 1.0 (the verify
/// stage applies the same `sim ≥ θ` test), with identical weights.
#[test]
fn sparse_graph_equals_dense_truth() {
    let cfg = MrMcConfig::sixteen_s().banded();
    let reads = corpus(200.0, 13);
    let sketches = sketches_of(&reads, &cfg);

    let mut p = Pipeline::new("test-graph");
    let graph = banded_graph_stage(&sketches, &cfg, &mut p).expect("banded stages");

    let mut truth = 0usize;
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            let sim = sketch_similarity(&sketches[i], &sketches[j], cfg.estimator);
            if sim >= cfg.theta {
                truth += 1;
                assert_eq!(
                    graph.sim(i, j),
                    (sim as f32) as f64,
                    "edge ({i},{j}) must carry the verified similarity"
                );
            } else {
                assert_eq!(graph.sim(i, j), 0.0, "({i},{j}) is below θ");
            }
        }
    }
    assert_eq!(graph.num_edges(), truth, "recall and precision 1.0");
}

/// Task panics in the banding *reducers* (bucket collection and pair
/// dedup) and the verify mappers must be recovered with a
/// bit-identical graph — the pipeline's new reduce-phase recovery
/// surface.
#[test]
fn reducer_faults_recover_bit_identical() {
    let cfg = MrMcConfig::sixteen_s().banded();
    let reads = corpus(150.0, 17);
    let sketches = sketches_of(&reads, &cfg);

    let mut clean_p = Pipeline::new("test-clean");
    let clean = banded_graph_stage(&sketches, &cfg, &mut clean_p).expect("clean run");

    // Job ordinals under this injector: 0 = band-signatures,
    // 1 = candidate-dedup, 2 = verify.
    let inj = FaultPlan::new()
        .task_panic(0, Phase::Reduce, 0, 2)
        .task_panic(1, Phase::Reduce, 1, 1)
        .task_panic(2, Phase::Map, 0, 1)
        .injector();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut faulty_p = Pipeline::new("test-faulty");
    let faulty = banded_graph_stage_with(&sketches, &cfg, &mut faulty_p, &inj);
    std::panic::set_hook(hook);

    let faulty = faulty.expect("faults within the retry budget must recover");
    assert_eq!(faulty, clean, "recovered graph must be bit-identical");
    assert!(
        faulty_p.total_recovery().tasks_retried >= 4,
        "the injected failures must show up in the ledger"
    );
}

/// Degenerate inputs: empty and single-read corpora produce empty
/// graphs without panicking, in both the candidate and graph APIs.
#[test]
fn degenerate_inputs() {
    let cfg = MrMcConfig::sixteen_s().banded();
    for n in [0usize, 1] {
        let reads = corpus(200.0, 3);
        let sketches = sketches_of(&reads[..n.min(reads.len())], &cfg);
        let mut p = Pipeline::new("test-degenerate");
        let candidates = banded_candidates(&sketches, &cfg, &mut p).expect("candidates");
        assert!(candidates.is_empty());
        let graph = banded_graph_stage(&sketches, &cfg, &mut p).expect("graph");
        assert_eq!(graph.num_edges(), 0);
    }
}
