//! Minwise hashing for sequence similarity (paper §III-A/B).
//!
//! Implements the exact scheme of the paper:
//!
//! * sequences are represented as k-mer feature sets `I_s` (via
//!   [`mrmc_seqio`]);
//! * `n` universal hash functions `h_i(x) = ((a_i·x + b_i) mod p) mod m`
//!   (Eq. 5, Carter–Wegman) simulate random permutations;
//! * the sketch `s̄ = (min h_1(I_s), …, min h_n(I_s))` (Eqs. 4 & 6)
//!   is a fixed-size signature;
//! * `Pr[minHash(h(I_a)) = minHash(h(I_b))] = J(a, b)` (Eq. 3), so the
//!   fraction of agreeing sketch positions estimates the Jaccard
//!   similarity of the underlying k-mer sets.
//!
//! Two estimators are provided ([`jaccard`]): the *positional* one just
//! described, and the *set-based* one the paper's Algorithm 1 line 9
//! writes (`|s̄_a ∩ s̄_b| / |s̄_a ∪ s̄_b|` on sketch values). Benches in
//! `crates/bench` compare their estimation error as an ablation.

pub mod banding;
pub mod hash;
pub mod jaccard;
pub mod prime;
pub mod reference;
pub mod sketch;

pub use banding::BandingScheme;
pub use hash::{HashParams, UniversalHashFamily};
pub use jaccard::{exact_jaccard, positional_similarity, set_similarity};
pub use prime::{is_prime, next_prime};
pub use sketch::{MinHasher, Sketch, SketchView};

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_seqio::encode::kmer_set;

    /// End-to-end: sketch similarity approximates true k-mer Jaccard.
    #[test]
    fn sketch_similarity_tracks_exact_jaccard() {
        let a = b"ACGTACGTAAGGTTCCACGTACGTAAGGTTCCACGTTGCA".repeat(4);
        // Perturb a copy lightly.
        let mut b = a.clone();
        for i in (0..b.len()).step_by(17) {
            b[i] = match b[i] {
                b'A' => b'C',
                b'C' => b'G',
                b'G' => b'T',
                _ => b'A',
            };
        }
        let k = 5;
        let sa = kmer_set(&a, k).unwrap();
        let sb = kmer_set(&b, k).unwrap();
        let exact = exact_jaccard(&sa, &sb);

        let hasher = MinHasher::for_kmer_size(k, 256, 42);
        let ka = hasher.sketch_kmers(sa.iter().copied());
        let kb = hasher.sketch_kmers(sb.iter().copied());
        let est = positional_similarity(&ka, &kb);
        assert!(
            (est - exact).abs() < 0.12,
            "estimate {est} too far from exact {exact}"
        );
    }
}
