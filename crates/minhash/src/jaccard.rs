//! Jaccard similarity: exact on feature sets, estimated on sketches.

use crate::sketch::{Sketch, SketchView, EMPTY_SLOT};

/// Exact Jaccard similarity `|A ∩ B| / |A ∪ B|` of two *sorted,
/// deduplicated* feature sets (Eq. 1). Two empty sets are defined to
/// have similarity 1 (identical), matching the sketch convention for
/// identical degenerate sequences... except sketches cannot see empty
/// sets, so callers should filter degenerate sequences first.
pub fn exact_jaccard(a: &[u64], b: &[u64]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a not sorted/dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b not sorted/dedup");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Positional sketch similarity: the fraction of sketch positions where
/// the two minwise values agree (the collision probability of Eq. 3).
/// This is the unbiased MinHash estimator of the Jaccard similarity.
///
/// Positions where *both* sketches are empty ([`EMPTY_SLOT`]) count as
/// agreement only if all positions are empty in both (two too-short
/// sequences are treated as identical); a mixed empty/non-empty
/// position is a disagreement.
pub fn positional_similarity(a: &Sketch, b: &Sketch) -> f64 {
    positional_similarity_view(a.view(), b.view())
}

/// [`positional_similarity`] over borrowed [`SketchView`]s — the form
/// the batch row kernels use. Degeneracy comes from the views' cached
/// counts (O(1)); the agreement count is a single branch-light pass.
pub fn positional_similarity_view(a: SketchView<'_>, b: SketchView<'_>) -> f64 {
    assert_eq!(
        a.values.len(),
        b.values.len(),
        "sketches of different length"
    );
    if a.values.is_empty() {
        return 1.0;
    }
    if a.is_degenerate() && b.is_degenerate() {
        return 1.0;
    }
    let agree: usize = a
        .values
        .iter()
        .zip(b.values)
        .map(|(&x, &y)| usize::from(x == y && x != EMPTY_SLOT))
        .sum();
    agree as f64 / a.values.len() as f64
}

/// Set-based sketch similarity, as written in Algorithm 1 line 9:
/// treat the sketch's minwise values as sets and take
/// `|vals_a ∩ vals_b| / |vals_a ∪ vals_b|`.
///
/// This variant is *biased* relative to positional agreement (values
/// from different hash functions can collide) but is cheaper to update
/// incrementally; the `estimator_error` bench quantifies the gap.
///
/// Allocation-free: both sketches cache their sorted, deduplicated
/// non-empty values at construction ([`Sketch::sorted_values`]), so a
/// pair comparison is a pure sorted-merge.
pub fn set_similarity(a: &Sketch, b: &Sketch) -> f64 {
    assert_eq!(a.len(), b.len(), "sketches of different length");
    let (va, vb) = (a.sorted_values(), b.sorted_values());
    if va.is_empty() && vb.is_empty() {
        return 1.0;
    }
    exact_jaccard(va, vb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::MinHasher;

    #[test]
    fn exact_jaccard_basics() {
        assert_eq!(exact_jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(exact_jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((exact_jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(exact_jaccard(&[], &[]), 1.0);
        assert_eq!(exact_jaccard(&[], &[1]), 0.0);
    }

    #[test]
    fn positional_identical_is_one() {
        let h = MinHasher::for_kmer_size(4, 32, 3);
        let s = h.sketch_sequence(b"ACGTACGTGGTTAACC").unwrap();
        assert_eq!(positional_similarity(&s, &s), 1.0);
    }

    #[test]
    fn positional_disjoint_is_near_zero() {
        let h = MinHasher::for_kmer_size(4, 128, 3);
        let a = h.sketch_sequence(&b"A".repeat(64)).unwrap();
        let c = h.sketch_sequence(&b"C".repeat(64)).unwrap();
        // Feature sets are {AAAA} and {CCCC}: disjoint, J = 0. The
        // estimator can only collide by hash collision mod m.
        assert!(positional_similarity(&a, &c) < 0.05);
    }

    #[test]
    fn degenerate_conventions() {
        let h = MinHasher::for_kmer_size(6, 16, 0);
        let empty1 = h.sketch_sequence(b"ACG").unwrap();
        let empty2 = h.sketch_sequence(b"TTT").unwrap();
        let full = h.sketch_sequence(b"ACGTACGTACGT").unwrap();
        assert_eq!(positional_similarity(&empty1, &empty2), 1.0);
        assert_eq!(positional_similarity(&empty1, &full), 0.0);
        assert_eq!(set_similarity(&empty1, &empty2), 1.0);
        assert_eq!(set_similarity(&empty1, &full), 0.0);
    }

    #[test]
    fn set_similarity_identical_is_one() {
        let h = MinHasher::for_kmer_size(4, 32, 9);
        let s = h.sketch_sequence(b"ACGTTGCAACGTTGCA").unwrap();
        assert_eq!(set_similarity(&s, &s), 1.0);
    }

    #[test]
    fn estimators_bounded() {
        let h = MinHasher::for_kmer_size(4, 64, 1);
        let a = h.sketch_sequence(b"ACGTACGTAAGGTTCC").unwrap();
        let b = h.sketch_sequence(b"ACGAACGTAAGCTTCC").unwrap();
        for sim in [positional_similarity(&a, &b), set_similarity(&a, &b)] {
            assert!((0.0..=1.0).contains(&sim));
        }
    }

    #[test]
    #[should_panic(expected = "different length")]
    fn mismatched_sketch_lengths_panic() {
        let h1 = MinHasher::for_kmer_size(4, 8, 0);
        let h2 = MinHasher::for_kmer_size(4, 16, 0);
        let a = h1.sketch_sequence(b"ACGTACGT").unwrap();
        let b = h2.sketch_sequence(b"ACGTACGT").unwrap();
        positional_similarity(&a, &b);
    }

    #[test]
    fn estimators_match_reference_implementations() {
        let h = MinHasher::for_kmer_size(5, 64, 13);
        let pairs = [
            (
                &b"ACGTACGTAAGGTTCCAGTCAGTC"[..],
                &b"ACGTACCTAAGGATCCAGTCTGTC"[..],
            ),
            (&b"ACGTACGTAAGGTTCC"[..], &b"ACG"[..]), // mixed degenerate
            (&b"AC"[..], &b"GT"[..]),                // both degenerate
        ];
        for (sa, sb) in pairs {
            let a = h.sketch_sequence(sa).unwrap();
            let b = h.sketch_sequence(sb).unwrap();
            assert_eq!(
                positional_similarity(&a, &b),
                crate::reference::positional_similarity(&a, &b)
            );
            assert_eq!(
                set_similarity(&a, &b),
                crate::reference::set_similarity(&a, &b)
            );
        }
    }

    #[test]
    fn mixed_degenerate_pair_is_zero_both_directions() {
        let h = MinHasher::for_kmer_size(6, 16, 0);
        let degen = h.sketch_sequence(b"ACG").unwrap();
        let full = h.sketch_sequence(b"ACGTACGTACGT").unwrap();
        assert_eq!(positional_similarity(&degen, &full), 0.0);
        assert_eq!(positional_similarity(&full, &degen), 0.0);
        assert_eq!(set_similarity(&degen, &full), 0.0);
        assert_eq!(set_similarity(&full, &degen), 0.0);
    }

    #[test]
    fn empty_slot_never_counts_as_positional_agreement() {
        // Hand-built sketches agreeing only on EMPTY_SLOT positions:
        // the shared sentinel must contribute nothing.
        let a = Sketch::from_values(vec![EMPTY_SLOT, 5, EMPTY_SLOT, 9]);
        let b = Sketch::from_values(vec![EMPTY_SLOT, 6, EMPTY_SLOT, 8]);
        assert_eq!(positional_similarity(&a, &b), 0.0);
        // One real agreement out of four positions.
        let c = Sketch::from_values(vec![EMPTY_SLOT, 5, EMPTY_SLOT, 8]);
        assert_eq!(positional_similarity(&a, &c), 0.25);
    }

    #[test]
    fn zero_length_sketches_are_identical() {
        let a = Sketch::from_values(vec![]);
        let b = Sketch::from_values(vec![]);
        assert_eq!(positional_similarity(&a, &b), 1.0);
        assert_eq!(set_similarity(&a, &b), 1.0);
    }

    #[test]
    fn positional_symmetry() {
        let h = MinHasher::for_kmer_size(5, 50, 21);
        let a = h.sketch_sequence(b"ACGTACGTAAGGTTCCAGTCAGTC").unwrap();
        let b = h.sketch_sequence(b"ACGTACCTAAGGATCCAGTCTGTC").unwrap();
        assert_eq!(positional_similarity(&a, &b), positional_similarity(&b, &a));
    }
}
