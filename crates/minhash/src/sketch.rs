//! Fixed-size minwise sketches (Eqs. 4 & 6).

use mrmc_seqio::encode::{CanonicalKmerIter, KmerIter};
use mrmc_seqio::SeqIoError;

use crate::hash::UniversalHashFamily;

/// A fixed-size minwise sketch: `values[i] = min_{x ∈ I} h_i(x)`.
///
/// `u64::MAX` marks positions for which the feature set was empty
/// (sequence shorter than k); two empty positions never "agree".
///
/// Construction caches two derived facts the similarity kernels need
/// on every pair: the count of non-empty positions (degeneracy checks
/// become O(1) instead of an O(n) rescan per call) and the sorted,
/// deduplicated non-empty values (the set-based estimator becomes a
/// pure allocation-free merge). Equality and hashing remain defined by
/// the raw values alone — the caches are functions of them.
#[derive(Debug, Clone)]
pub struct Sketch {
    values: Vec<u64>,
    /// Number of positions with a real minwise value (`!= EMPTY_SLOT`).
    non_empty: usize,
    /// Sorted, deduplicated non-empty values.
    sorted: Vec<u64>,
}

impl PartialEq for Sketch {
    fn eq(&self, other: &Sketch) -> bool {
        self.values == other.values
    }
}

impl Eq for Sketch {}

impl std::hash::Hash for Sketch {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.values.hash(state);
    }
}

/// Sentinel for "no feature seen".
pub const EMPTY_SLOT: u64 = u64::MAX;

impl Sketch {
    /// Construct from raw minwise values (computes the caches).
    pub fn from_values(values: Vec<u64>) -> Sketch {
        let mut sorted: Vec<u64> = values
            .iter()
            .copied()
            .filter(|&v| v != EMPTY_SLOT)
            .collect();
        let non_empty = sorted.len();
        sorted.sort_unstable();
        sorted.dedup();
        Sketch {
            values,
            non_empty,
            sorted,
        }
    }

    /// Sketch length (the number of hash functions `n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the sketch has no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the underlying feature set was empty (cached; O(1)).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.non_empty == 0
    }

    /// Number of positions holding a real minwise value (cached).
    #[inline]
    pub fn non_empty(&self) -> usize {
        self.non_empty
    }

    /// The minwise values.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Sorted, deduplicated non-empty values (cached) — the operand of
    /// the set-based estimator.
    #[inline]
    pub fn sorted_values(&self) -> &[u64] {
        &self.sorted
    }

    /// Borrow the sketch as a [`SketchView`].
    #[inline]
    pub fn view(&self) -> SketchView<'_> {
        SketchView {
            values: &self.values,
            non_empty: self.non_empty,
        }
    }
}

/// A borrowed sketch with its cached degeneracy metadata: what the
/// batch similarity kernels (the row mapper's strip loops) carry so
/// they never rescan a sketch to rediscover emptiness.
#[derive(Debug, Clone, Copy)]
pub struct SketchView<'a> {
    /// The minwise values.
    pub values: &'a [u64],
    /// Number of positions holding a real minwise value.
    pub non_empty: usize,
}

impl SketchView<'_> {
    /// Whether the underlying feature set was empty.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.non_empty == 0
    }
}

/// Builds sketches for k-mer feature sets with a shared hash family, so
/// that sketches are comparable across sequences.
#[derive(Debug, Clone)]
pub struct MinHasher {
    family: UniversalHashFamily,
    k: usize,
    canonical: bool,
}

impl MinHasher {
    /// A sketcher with `n` hash functions for k-mers of size `k`.
    /// `seed` fixes the hash parameter draws (paper: `a_i, b_i` chosen
    /// uniformly at random once per run).
    pub fn for_kmer_size(k: usize, n: usize, seed: u64) -> MinHasher {
        MinHasher {
            family: UniversalHashFamily::for_kmer_size(k, n, seed),
            k,
            canonical: false,
        }
    }

    /// Switch to canonical (strand-independent) k-mers: each k-mer is
    /// replaced by the minimum of itself and its reverse complement
    /// before hashing, so a read and its reverse complement produce
    /// identical sketches. The paper's pipeline is strand-sensitive;
    /// this is the Mash-style extension for randomly-oriented shotgun
    /// reads.
    pub fn canonical(mut self) -> MinHasher {
        self.canonical = true;
        self
    }

    /// Whether canonical k-mers are in use.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Wrap an existing family (its range must cover the `4^k`
    /// feature space — both the default and the paper-literal
    /// families qualify).
    pub fn with_family(k: usize, family: UniversalHashFamily) -> MinHasher {
        assert!(
            (1..=31).contains(&k),
            "k must be 1..=31 (k-mers pack 2 bits per base into a u64; k = {k} does not fit)"
        );
        assert!(
            family.m >= 1u64 << (2 * k),
            "family range {} too small for 4^{k} features — sized for different k",
            family.m
        );
        MinHasher {
            family,
            k,
            canonical: false,
        }
    }

    /// k-mer size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sketch length `n`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.family.len()
    }

    /// The shared hash family.
    pub fn family(&self) -> &UniversalHashFamily {
        &self.family
    }

    /// Sketch an iterator of packed k-mer features. Duplicates are
    /// harmless (min is idempotent), so callers may feed raw k-mer
    /// streams without deduplicating.
    ///
    /// The feature stream is buffered and deduplicated once — a sketch
    /// depends only on the *set* of k-mers, and reads repeat k-mers
    /// freely (low-complexity stretches; any k well below log₄(len)) —
    /// then the hash family is walked in blocks: each block's running
    /// minima live in a small stack array while the (cache-resident)
    /// k-mer buffer streams past, instead of re-touching all `n` sketch
    /// slots per k-mer. Results are bit-identical to
    /// [`crate::reference::sketch_kmers`] (min is order-independent and
    /// idempotent, so reordering and deduplication cannot change it).
    pub fn sketch_kmers(&self, kmers: impl IntoIterator<Item = u64>) -> Sketch {
        const BLOCK: usize = 8;
        let n = self.family.len();
        let mut values = vec![EMPTY_SLOT; n];
        let mut buf: Vec<u64> = kmers.into_iter().collect();
        if buf.is_empty() {
            return Sketch::from_values(values);
        }
        // Each duplicate dropped here saves `n` hash evaluations; the
        // sort pays for itself whenever the stream has any repetition.
        buf.sort_unstable();
        buf.dedup();
        let params = self.family.params();
        for (vals, hps) in values.chunks_mut(BLOCK).zip(params.chunks(BLOCK)) {
            let mut minima = [EMPTY_SLOT; BLOCK];
            for &x in &buf {
                for (slot, &hp) in minima.iter_mut().zip(hps) {
                    let h = self.family.eval(hp, x);
                    if h < *slot {
                        *slot = h;
                    }
                }
            }
            vals.copy_from_slice(&minima[..vals.len()]);
        }
        Sketch::from_values(values)
    }

    /// Sketch a DNA sequence directly (k-mer extraction + hashing in
    /// one pass — what the `CalculateMinwiseHash` UDF does per record).
    pub fn sketch_sequence(&self, seq: &[u8]) -> Result<Sketch, SeqIoError> {
        if self.canonical {
            let iter = CanonicalKmerIter::new(seq, self.k)?;
            Ok(self.sketch_kmers(iter))
        } else {
            let iter = KmerIter::new(seq, self.k)?;
            Ok(self.sketch_kmers(iter))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> MinHasher {
        MinHasher::for_kmer_size(4, 64, 11)
    }

    #[test]
    fn identical_sequences_identical_sketches() {
        let h = hasher();
        let a = h.sketch_sequence(b"ACGTACGTTTGGCCAA").unwrap();
        let b = h.sketch_sequence(b"ACGTACGTTTGGCCAA").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sketch_invariant_to_kmer_multiplicity_and_order() {
        let h = hasher();
        // Same k-mer set, different multiplicities/order.
        let s1 = h.sketch_kmers([1u64, 2, 3, 3, 3, 2]);
        let s2 = h.sketch_kmers([3u64, 1, 2]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn short_sequence_gives_degenerate_sketch() {
        let h = hasher();
        let s = h.sketch_sequence(b"ACG").unwrap(); // len 3 < k=4
        assert!(s.is_degenerate());
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn sketch_values_below_m() {
        let h = hasher();
        let s = h.sketch_sequence(b"ACGTACGTACGTTTTT").unwrap();
        for &v in s.values() {
            assert!(v < h.family().m);
        }
    }

    #[test]
    fn superset_never_increases_min() {
        let h = hasher();
        let base: Vec<u64> = vec![5, 9, 120];
        let sup: Vec<u64> = vec![5, 9, 120, 7, 200];
        let sb = h.sketch_kmers(base.iter().copied());
        let ss = h.sketch_kmers(sup.iter().copied());
        for (b, s) in sb.values().iter().zip(ss.values()) {
            assert!(s <= b);
        }
    }

    #[test]
    fn with_family_checks_k() {
        let fam = UniversalHashFamily::for_kmer_size(5, 4, 0);
        let h = MinHasher::with_family(5, fam);
        assert_eq!(h.k(), 5);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn with_family_wrong_k_panics() {
        // A paper-literal k = 5 family (m = 1024) cannot cover k = 16's
        // 4^16 feature space.
        let fam = UniversalHashFamily::for_kmer_size_paper_literal(5, 4, 0);
        MinHasher::with_family(16, fam);
    }

    #[test]
    fn bad_k_propagates_error() {
        let h = MinHasher::for_kmer_size(4, 4, 0);
        // k is fixed at construction; sequence with only ambiguous bases
        // still sketches (degenerate), not an error.
        let s = h.sketch_sequence(b"NNNNNNN").unwrap();
        assert!(s.is_degenerate());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn with_family_oversized_k_rejected() {
        // k = 32 used to overflow the `1 << (2k)` range check; now it
        // is rejected up front with a clear message.
        let fam = UniversalHashFamily::for_kmer_size(5, 4, 0);
        MinHasher::with_family(32, fam);
    }

    #[test]
    fn blocked_sketch_bit_identical_to_reference() {
        // Sketch lengths around the block size: partial final block,
        // exact multiple, single block, and sub-block.
        for n in [1usize, 7, 8, 9, 64, 100] {
            let h = MinHasher::for_kmer_size(5, n, 33);
            let kmers: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E37) % 1024).collect();
            let fast = h.sketch_kmers(kmers.iter().copied());
            let slow = crate::reference::sketch_kmers(&h, kmers.iter().copied());
            assert_eq!(fast, slow, "n = {n}");
            assert_eq!(fast.values(), slow.values(), "n = {n}");
        }
    }

    #[test]
    fn duplicated_stream_bit_identical_to_reference() {
        // Heavy repetition (each k-mer ~25×, unsorted order): the
        // dedup'd blocked kernel must still match the per-occurrence
        // reference loop exactly.
        let h = MinHasher::for_kmer_size(5, 40, 17);
        let kmers: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E37) % 20).collect();
        let fast = h.sketch_kmers(kmers.iter().copied());
        let slow = crate::reference::sketch_kmers(&h, kmers.iter().copied());
        assert_eq!(fast.values(), slow.values());
        let unique = h.sketch_kmers((0..20u64).map(|i| i.wrapping_mul(0x9E37) % 20));
        assert_eq!(fast.values(), unique.values());
    }

    #[test]
    fn cached_metadata_consistent() {
        let h = hasher();
        let s = h.sketch_sequence(b"ACGTACGTTTGGCCAA").unwrap();
        assert_eq!(s.is_degenerate(), crate::reference::is_degenerate(&s));
        assert_eq!(
            s.non_empty(),
            s.values().iter().filter(|&&v| v != EMPTY_SLOT).count()
        );
        let mut expect: Vec<u64> = s
            .values()
            .iter()
            .copied()
            .filter(|&v| v != EMPTY_SLOT)
            .collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(s.sorted_values(), &expect[..]);
        // Degenerate sketch: empty caches.
        let d = h.sketch_sequence(b"AC").unwrap();
        assert!(d.is_degenerate());
        assert_eq!(d.non_empty(), 0);
        assert!(d.sorted_values().is_empty());
    }

    #[test]
    fn canonical_sketch_reverse_complement_invariant() {
        use mrmc_seqio::alphabet::reverse_complement;
        let h = MinHasher::for_kmer_size(6, 48, 17).canonical();
        let seq = b"ACGTACGTTTGGCCAATCGATCGGATCCGTA";
        let fwd = h.sketch_sequence(seq).unwrap();
        let rev = h.sketch_sequence(&reverse_complement(seq)).unwrap();
        assert_eq!(fwd, rev);
        // Strand-sensitive mode distinguishes the two strands.
        let hs = MinHasher::for_kmer_size(6, 48, 17);
        let f2 = hs.sketch_sequence(seq).unwrap();
        let r2 = hs.sketch_sequence(&reverse_complement(seq)).unwrap();
        assert_ne!(f2, r2);
    }
}
