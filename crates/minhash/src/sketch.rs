//! Fixed-size minwise sketches (Eqs. 4 & 6).

use mrmc_seqio::encode::{CanonicalKmerIter, KmerIter};
use mrmc_seqio::SeqIoError;

use crate::hash::UniversalHashFamily;

/// A fixed-size minwise sketch: `values[i] = min_{x ∈ I} h_i(x)`.
///
/// `u64::MAX` marks positions for which the feature set was empty
/// (sequence shorter than k); two empty positions never "agree".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sketch {
    values: Vec<u64>,
}

/// Sentinel for "no feature seen".
pub const EMPTY_SLOT: u64 = u64::MAX;

impl Sketch {
    /// Construct from raw minwise values.
    pub fn from_values(values: Vec<u64>) -> Sketch {
        Sketch { values }
    }

    /// Sketch length (the number of hash functions `n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the sketch has no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the underlying feature set was empty.
    pub fn is_degenerate(&self) -> bool {
        self.values.iter().all(|&v| v == EMPTY_SLOT)
    }

    /// The minwise values.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// Builds sketches for k-mer feature sets with a shared hash family, so
/// that sketches are comparable across sequences.
#[derive(Debug, Clone)]
pub struct MinHasher {
    family: UniversalHashFamily,
    k: usize,
    canonical: bool,
}

impl MinHasher {
    /// A sketcher with `n` hash functions for k-mers of size `k`.
    /// `seed` fixes the hash parameter draws (paper: `a_i, b_i` chosen
    /// uniformly at random once per run).
    pub fn for_kmer_size(k: usize, n: usize, seed: u64) -> MinHasher {
        MinHasher {
            family: UniversalHashFamily::for_kmer_size(k, n, seed),
            k,
            canonical: false,
        }
    }

    /// Switch to canonical (strand-independent) k-mers: each k-mer is
    /// replaced by the minimum of itself and its reverse complement
    /// before hashing, so a read and its reverse complement produce
    /// identical sketches. The paper's pipeline is strand-sensitive;
    /// this is the Mash-style extension for randomly-oriented shotgun
    /// reads.
    pub fn canonical(mut self) -> MinHasher {
        self.canonical = true;
        self
    }

    /// Whether canonical k-mers are in use.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Wrap an existing family (its range must cover the `4^k`
    /// feature space — both the default and the paper-literal
    /// families qualify).
    pub fn with_family(k: usize, family: UniversalHashFamily) -> MinHasher {
        assert!(
            family.m >= 1u64 << (2 * k),
            "family range {} too small for 4^{k} features — sized for different k",
            family.m
        );
        MinHasher {
            family,
            k,
            canonical: false,
        }
    }

    /// k-mer size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sketch length `n`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.family.len()
    }

    /// The shared hash family.
    pub fn family(&self) -> &UniversalHashFamily {
        &self.family
    }

    /// Sketch an iterator of packed k-mer features. Duplicates are
    /// harmless (min is idempotent), so callers may feed raw k-mer
    /// streams without deduplicating.
    pub fn sketch_kmers(&self, kmers: impl IntoIterator<Item = u64>) -> Sketch {
        let n = self.family.len();
        let mut values = vec![EMPTY_SLOT; n];
        for x in kmers {
            for (i, slot) in values.iter_mut().enumerate() {
                let h = self.family.hash(i, x);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        Sketch { values }
    }

    /// Sketch a DNA sequence directly (k-mer extraction + hashing in
    /// one pass — what the `CalculateMinwiseHash` UDF does per record).
    pub fn sketch_sequence(&self, seq: &[u8]) -> Result<Sketch, SeqIoError> {
        if self.canonical {
            let iter = CanonicalKmerIter::new(seq, self.k)?;
            Ok(self.sketch_kmers(iter))
        } else {
            let iter = KmerIter::new(seq, self.k)?;
            Ok(self.sketch_kmers(iter))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> MinHasher {
        MinHasher::for_kmer_size(4, 64, 11)
    }

    #[test]
    fn identical_sequences_identical_sketches() {
        let h = hasher();
        let a = h.sketch_sequence(b"ACGTACGTTTGGCCAA").unwrap();
        let b = h.sketch_sequence(b"ACGTACGTTTGGCCAA").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sketch_invariant_to_kmer_multiplicity_and_order() {
        let h = hasher();
        // Same k-mer set, different multiplicities/order.
        let s1 = h.sketch_kmers([1u64, 2, 3, 3, 3, 2]);
        let s2 = h.sketch_kmers([3u64, 1, 2]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn short_sequence_gives_degenerate_sketch() {
        let h = hasher();
        let s = h.sketch_sequence(b"ACG").unwrap(); // len 3 < k=4
        assert!(s.is_degenerate());
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn sketch_values_below_m() {
        let h = hasher();
        let s = h.sketch_sequence(b"ACGTACGTACGTTTTT").unwrap();
        for &v in s.values() {
            assert!(v < h.family().m);
        }
    }

    #[test]
    fn superset_never_increases_min() {
        let h = hasher();
        let base: Vec<u64> = vec![5, 9, 120];
        let sup: Vec<u64> = vec![5, 9, 120, 7, 200];
        let sb = h.sketch_kmers(base.iter().copied());
        let ss = h.sketch_kmers(sup.iter().copied());
        for (b, s) in sb.values().iter().zip(ss.values()) {
            assert!(s <= b);
        }
    }

    #[test]
    fn with_family_checks_k() {
        let fam = UniversalHashFamily::for_kmer_size(5, 4, 0);
        let h = MinHasher::with_family(5, fam);
        assert_eq!(h.k(), 5);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn with_family_wrong_k_panics() {
        // A paper-literal k = 5 family (m = 1024) cannot cover k = 16's
        // 4^16 feature space.
        let fam = UniversalHashFamily::for_kmer_size_paper_literal(5, 4, 0);
        MinHasher::with_family(16, fam);
    }

    #[test]
    fn bad_k_propagates_error() {
        let h = MinHasher::for_kmer_size(4, 4, 0);
        // k is fixed at construction; sequence with only ambiguous bases
        // still sketches (degenerate), not an error.
        let s = h.sketch_sequence(b"NNNNNNN").unwrap();
        assert!(s.is_degenerate());
    }
}
