//! LSH banding of minwise sketches (candidate pruning).
//!
//! The all-pairs similarity stage is O(n²) in the read count, but the
//! number of pairs above the clustering threshold θ stays near-linear.
//! Banding turns the sketch into `b` *band signatures* of `r` hashed
//! positions each (`b·r ≤ n`); two sketches become a candidate pair
//! when any band signature collides. With positional agreement `s`,
//! the collision probability is the classic S-curve
//!
//! ```text
//! P(candidate) = 1 − (1 − s^r)^b
//! ```
//!
//! whose inflection sits near `s* = (1/b)^(1/r)`.
//!
//! # Exactness contract
//!
//! Probabilistic recall is not good enough here: the banded pipeline
//! must reproduce the dense path bit-identically. The guarantee is
//! combinatorial, not statistical. A pair with positional similarity
//! `≥ θ` over `n` positions agrees (literally, value-for-value) in at
//! least `⌈θ·n⌉` positions, so it *disagrees* in at most
//! `d = n − ⌈θ·n⌉` positions. Split the sketch into `d + 1` bands: by
//! pigeonhole some band contains no disagreeing position, its two
//! slices are byte-identical, and the pair collides with certainty.
//! [`BandingScheme::tune`] picks exactly `b = d + 1` bands (and
//! `r = ⌊n / b⌋` rows), so every pair at or above θ is a candidate —
//! recall 1.0 by construction, checked by
//! [`BandingScheme::guarantees_recall`]. Bucket collisions below θ are
//! false positives only; the verify stage filters them with the exact
//! similarity kernels.
//!
//! `EMPTY_SLOT` positions hash like any other value, so two sketches
//! that are both empty at a position still agree at the band level.
//! That can only *add* candidates (the positional estimator does not
//! count empty agreement), never lose one, so the contract holds for
//! degenerate sketches too.

use crate::sketch::Sketch;

/// A banding layout: `bands` signatures of `rows` sketch positions.
/// Positions beyond `bands × rows` are ignored by the banding (they
/// still participate in verification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandingScheme {
    /// Number of bands `b` (≥ 1).
    pub bands: usize,
    /// Rows (sketch positions) hashed into each band signature (≥ 1).
    pub rows: usize,
}

/// splitmix64 finalizer — a strong, dependency-free 64-bit mixer.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Smallest agreement count `a` with `a / n ≥ θ` under the *same* f64
/// comparison the positional estimator performs. `⌈θ·n⌉` is almost
/// right, but θ·n carries rounding error (0.9 × 50 ≠ 45 exactly in
/// binary), and an off-by-one here would silently break the exact
/// recall contract — so the candidate is corrected against the real
/// division.
fn min_agreeing(n: usize, theta: f64) -> usize {
    let mut a = ((theta * n as f64).ceil() as usize).min(n);
    while a > 0 && (a - 1) as f64 / n as f64 >= theta {
        a -= 1;
    }
    while a < n && (a as f64 / n as f64) < theta {
        a += 1;
    }
    a
}

impl BandingScheme {
    /// Build a scheme; panics unless `bands ≥ 1` and `rows ≥ 1`.
    pub fn new(bands: usize, rows: usize) -> BandingScheme {
        assert!(bands >= 1, "bands must be ≥ 1");
        assert!(rows >= 1, "rows must be ≥ 1");
        BandingScheme { bands, rows }
    }

    /// The exact-recall tuning rule: `b = n − ⌈θ·n⌉ + 1` bands (the
    /// pigeonhole count for pairs at θ), `r = ⌊n / b⌋` rows. For any
    /// `θ > 0` the resulting scheme satisfies
    /// [`BandingScheme::guarantees_recall`]; at θ close to 1 it
    /// degenerates to one band over the whole sketch (only identical
    /// sketches collide), at low θ to many narrow bands.
    pub fn tune(num_hashes: usize, theta: f64) -> BandingScheme {
        let n = num_hashes.max(1);
        let theta = theta.clamp(0.0, 1.0);
        let max_disagree = n - min_agreeing(n, theta);
        let bands = (max_disagree + 1).min(n);
        BandingScheme {
            bands,
            rows: n / bands,
        }
    }

    /// Sketch positions covered by the banding (`b × r ≤ n`).
    pub fn covered(&self) -> usize {
        self.bands * self.rows
    }

    /// The S-curve midpoint `(1/b)^(1/r)`: the similarity at which the
    /// *per-position-agreement* model gives ≈ 63 % candidate
    /// probability. Pairs well above it almost surely collide; the
    /// hard guarantee is [`BandingScheme::exact_recall_threshold`].
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// The S-curve itself: `1 − (1 − s^r)^b` for positional agreement
    /// `s ∈ [0, 1]` under the independent-position model.
    pub fn collision_probability(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, 1.0);
        1.0 - (1.0 - s.powi(self.rows as i32)).powi(self.bands as i32)
    }

    /// Similarity at which collision becomes *certain* (pigeonhole):
    /// any pair with positional similarity `≥ (n − b + 1)/n` has at
    /// most `b − 1` disagreeing positions, so at least one of the `b`
    /// bands is disagreement-free and byte-identical.
    pub fn exact_recall_threshold(&self, num_hashes: usize) -> f64 {
        let n = num_hashes.max(1) as f64;
        ((n - self.bands as f64 + 1.0) / n).max(0.0)
    }

    /// Whether this scheme guarantees recall 1.0 for pairs with
    /// positional similarity ≥ θ over `num_hashes`-position sketches.
    /// A pair passing `agree/n ≥ θ` disagrees in at most
    /// `n − min_agree` positions; the pigeonhole needs strictly more
    /// bands than that.
    pub fn guarantees_recall(&self, num_hashes: usize, theta: f64) -> bool {
        let n = num_hashes.max(1);
        n - min_agreeing(n, theta.clamp(0.0, 1.0)) < self.bands
    }

    /// Signature of band `band` over raw sketch values: the `rows`
    /// values starting at `band × rows`, folded through splitmix64
    /// with the band index as the seed (so identical content in
    /// *different* bands lands in different buckets).
    ///
    /// Boundary behavior is explicit, not incidental:
    ///
    /// * `band ≥ bands` panics (always, not only in debug builds) —
    ///   a silently wrapped band index would corrupt bucket identity;
    /// * `band × rows` is computed with checked arithmetic, so a
    ///   pathological scheme cannot overflow `usize` into a bogus
    ///   small offset;
    /// * a band that starts at or past `values.len()` hashes the empty
    ///   slice (seed only) — short sketches get the same signature for
    ///   a given out-of-range band, which matches [`collides`]'s
    ///   "`s < e`" treatment of bands with no content: equality there
    ///   can only come from equally-empty bands.
    ///
    /// [`collides`]: BandingScheme::collides
    #[inline]
    pub fn signature(&self, band: usize, values: &[u64]) -> u64 {
        assert!(
            band < self.bands,
            "band {band} out of range for {} bands",
            self.bands
        );
        let start = band
            .checked_mul(self.rows)
            .expect("band × rows overflows usize");
        let slice = if start >= values.len() {
            &[]
        } else {
            &values[start..(start + self.rows).min(values.len())]
        };
        let mut h = mix64(0x6261_6e64 ^ (band as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for &v in slice {
            h = mix64(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        h
    }

    /// All `b` band signatures of a sketch, in band order.
    pub fn signatures(&self, sketch: &Sketch) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.bands);
        self.signatures_into(sketch, &mut out);
        out
    }

    /// [`BandingScheme::signatures`] into a reused buffer.
    pub fn signatures_into(&self, sketch: &Sketch, out: &mut Vec<u64>) {
        out.clear();
        let values = sketch.values();
        for band in 0..self.bands {
            out.push(self.signature(band, values));
        }
    }

    /// Whether two sketches collide in at least one band — the naive
    /// reference for the MR candidate stages (compares band *content*,
    /// which signature equality follows from).
    pub fn collides(&self, a: &Sketch, b: &Sketch) -> bool {
        let (va, vb) = (a.values(), b.values());
        (0..self.bands).any(|band| {
            let s = band * self.rows;
            let e = (s + self.rows).min(va.len().min(vb.len()));
            s < e && va[s..e] == vb[s..e]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::EMPTY_SLOT;

    fn sketch(values: Vec<u64>) -> Sketch {
        Sketch::from_values(values)
    }

    #[test]
    fn tune_matches_pigeonhole_rule() {
        // Paper defaults: n = 50, θ = 0.95 ⇒ ⌈47.5⌉ = 48 agreements,
        // ≤ 2 disagreements, 3 bands of 16 rows.
        let s = BandingScheme::tune(50, 0.95);
        assert_eq!((s.bands, s.rows), (3, 16));
        assert!(s.guarantees_recall(50, 0.95));
        // n = 100, θ = 0.95 ⇒ ≤ 5 disagreements, 6 bands of 16 rows.
        let s = BandingScheme::tune(100, 0.95);
        assert_eq!((s.bands, s.rows), (6, 16));
        assert!(s.guarantees_recall(100, 0.95));
        // θ = 1 ⇒ one band over the whole sketch.
        let s = BandingScheme::tune(64, 1.0);
        assert_eq!((s.bands, s.rows), (1, 64));
        // θ = 0 cannot be guaranteed (d = n).
        let s = BandingScheme::tune(8, 0.0);
        assert_eq!((s.bands, s.rows), (8, 1));
        assert!(!s.guarantees_recall(8, 0.0));
    }

    #[test]
    fn s_curve_shape() {
        let s = BandingScheme::new(4, 8);
        assert_eq!(s.collision_probability(0.0), 0.0);
        assert_eq!(s.collision_probability(1.0), 1.0);
        // Monotone increasing.
        let mut prev = 0.0;
        for i in 0..=20 {
            let p = s.collision_probability(i as f64 / 20.0);
            assert!(p >= prev);
            prev = p;
        }
        // The midpoint is where one band's match probability is 1/b.
        let mid = s.threshold();
        let per_band = mid.powi(8);
        assert!((per_band - 0.25).abs() < 1e-12);
    }

    #[test]
    fn signatures_deterministic_and_band_distinct() {
        let sk = sketch((0..32).collect());
        let scheme = BandingScheme::new(4, 8);
        let a = scheme.signatures(&sk);
        let b = scheme.signatures(&sk);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        // A sketch with identical content in every band still gets
        // distinct per-band signatures (band index is in the seed).
        let flat = sketch(vec![7u64; 32]);
        let sigs = scheme.signatures(&flat);
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "bands {i} and {j}");
            }
        }
    }

    #[test]
    fn equal_band_content_implies_equal_signature() {
        let scheme = BandingScheme::new(3, 4);
        let a = sketch(vec![1, 2, 3, 4, 9, 9, 9, 9, 5, 6, 7, 8]);
        let b = sketch(vec![1, 2, 3, 4, 0, 0, 0, 0, 5, 6, 7, 8]);
        assert_eq!(
            scheme.signature(0, a.values()),
            scheme.signature(0, b.values())
        );
        assert_ne!(
            scheme.signature(1, a.values()),
            scheme.signature(1, b.values())
        );
        assert_eq!(
            scheme.signature(2, a.values()),
            scheme.signature(2, b.values())
        );
        assert!(scheme.collides(&a, &b));
    }

    #[test]
    fn pigeonhole_recall_on_mutated_sketches() {
        // n = 50, θ = 0.95: up to 2 mutated positions must always
        // collide under the tuned scheme, wherever they fall.
        let scheme = BandingScheme::tune(50, 0.95);
        let base: Vec<u64> = (0..50).map(|i| i * 31 + 7).collect();
        let a = sketch(base.clone());
        for p1 in 0..50 {
            for p2 in 0..50 {
                let mut m = base.clone();
                m[p1] ^= 0xdead;
                m[p2] ^= 0xbeef;
                assert!(
                    scheme.collides(&a, &sketch(m)),
                    "mutations at {p1},{p2} must still collide"
                );
            }
        }
    }

    #[test]
    fn empty_positions_agree_at_band_level() {
        let scheme = BandingScheme::new(2, 4);
        let a = sketch(vec![
            1, EMPTY_SLOT, 3, 4, EMPTY_SLOT, EMPTY_SLOT, EMPTY_SLOT, EMPTY_SLOT,
        ]);
        let b = sketch(vec![
            1, EMPTY_SLOT, 3, 4, EMPTY_SLOT, EMPTY_SLOT, EMPTY_SLOT, EMPTY_SLOT,
        ]);
        assert!(scheme.collides(&a, &b));
        assert_eq!(scheme.signatures(&a), scheme.signatures(&b));
    }

    #[test]
    fn covered_and_truncation() {
        let s = BandingScheme::tune(50, 0.95);
        assert_eq!(s.covered(), 48); // 2 tail positions unbanded
        assert!(s.covered() <= 50);
        // Signature of a band entirely in range works on exactly-n
        // value vectors.
        let sk = sketch((0..50).collect());
        assert_eq!(s.signatures(&sk).len(), 3);
    }

    #[test]
    #[should_panic(expected = "bands must be ≥ 1")]
    fn zero_bands_rejected() {
        BandingScheme::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "band 3 out of range for 3 bands")]
    fn out_of_range_band_panics_in_release_too() {
        let s = BandingScheme::new(3, 4);
        s.signature(3, &[0; 12]);
    }

    #[test]
    fn short_value_slices_hash_defined_empty_bands() {
        let s = BandingScheme::new(3, 4);
        // Band 2 starts at 8, past a 6-value sketch: defined (empty
        // slice), deterministic, and equal across equally-short inputs.
        let a = s.signature(2, &[1, 2, 3, 4, 5, 6]);
        let b = s.signature(2, &[9, 9, 9, 9, 9, 9]);
        assert_eq!(a, b, "out-of-range bands hash only the band seed");
        assert_eq!(a, s.signature(2, &[]));
        // A partially covered band hashes just its in-range prefix.
        let partial = s.signature(1, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(partial, s.signature(1, &[1, 2, 3, 4, 5, 6, 7, 8][..6]));
        assert_ne!(partial, s.signature(1, &[1, 2, 3, 4, 5, 7]));
    }

    #[test]
    fn band_times_rows_overflow_is_checked() {
        let s = BandingScheme::new(usize::MAX, 2);
        let caught = std::panic::catch_unwind(|| s.signature(usize::MAX / 2 + 1, &[]));
        assert!(caught.is_err(), "overflowing band × rows must panic");
    }
}
