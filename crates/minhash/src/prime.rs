//! Deterministic Miller–Rabin primality for `u64` and prime search.
//!
//! The universal hash family needs a prime `p > m` where `m = 4^k` is
//! the feature-space size (paper Eq. 5, the Pig parameter `$DIV`). We
//! find it with a deterministic Miller–Rabin using the known witness
//! set that is exact for all 64-bit integers.

/// Deterministic Miller–Rabin witnesses covering all `u64` inputs.
const WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Modular multiplication without overflow.
#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation.
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic primality test for any `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d·2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &WITNESSES {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime strictly greater than `n`. Panics if none fits in
/// `u64` (unreachable for the feature-space sizes we use, ≤ 4^31).
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.checked_add(1).expect("prime search overflow");
    if candidate <= 2 {
        return 2;
    }
    if candidate.is_multiple_of(2) {
        if candidate == 2 {
            return 2;
        }
        candidate += 1;
    }
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate = candidate.checked_add(2).expect("prime search overflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 97];
        for p in primes {
            assert!(is_prime(p), "{p}");
        }
        for c in [0u64, 1, 4, 6, 8, 9, 15, 21, 25, 91, 100] {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn known_large_primes() {
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(4_611_686_018_427_387_847)); // large 63-bit prime
        assert!(!is_prime(1_000_000_007u64 * 3));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn next_prime_basics() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(3), 5);
        assert_eq!(next_prime(10), 11);
        assert_eq!(next_prime(1 << 20), 1_048_583);
    }

    #[test]
    fn next_prime_exceeds_feature_space() {
        // k = 15 → m = 4^15 = 2^30; the prime must be > m.
        let m = 1u64 << 30;
        let p = next_prime(m);
        assert!(p > m && is_prime(p));
    }
}
