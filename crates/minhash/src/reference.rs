//! Naive oracle implementations of the optimized kernels.
//!
//! These are the textbook forms the paper writes down, kept as the
//! ground truth the optimized kernels in [`crate::hash`],
//! [`crate::sketch`] and [`crate::jaccard`] must match *bit for bit*.
//! Unit tests assert exact equality on mixed operating points, and
//! `crates/bench` measures the before/after gap against them.

use crate::hash::UniversalHashFamily;
use crate::jaccard::exact_jaccard;
use crate::sketch::{MinHasher, Sketch, EMPTY_SLOT};

/// Eq. 5 exactly as written: `((a·x + b) mod p) mod m` by division.
pub fn hash(family: &UniversalHashFamily, i: usize, x: u64) -> u64 {
    let hp = family.params()[i];
    let v = (hp.a as u128 * x as u128 + hp.b as u128) % family.p as u128;
    (v as u64) % family.m
}

/// The original per-(k-mer, hash-function) sketch loop: for every
/// feature, walk the whole family and min-update each slot in memory.
pub fn sketch_kmers(hasher: &MinHasher, kmers: impl IntoIterator<Item = u64>) -> Sketch {
    let n = hasher.num_hashes();
    let mut values = vec![EMPTY_SLOT; n];
    for x in kmers {
        for (i, slot) in values.iter_mut().enumerate() {
            let h = hash(hasher.family(), i, x);
            if h < *slot {
                *slot = h;
            }
        }
    }
    Sketch::from_values(values)
}

/// Degeneracy by rescanning every slot (what `Sketch::is_degenerate`
/// did before the cached non-empty count).
pub fn is_degenerate(s: &Sketch) -> bool {
    s.values().iter().all(|&v| v == EMPTY_SLOT)
}

/// Positional estimator with the degeneracy rescan.
pub fn positional_similarity(a: &Sketch, b: &Sketch) -> f64 {
    assert_eq!(a.len(), b.len(), "sketches of different length");
    if a.is_empty() {
        return 1.0;
    }
    if is_degenerate(a) && is_degenerate(b) {
        return 1.0;
    }
    let agree = a
        .values()
        .iter()
        .zip(b.values())
        .filter(|(&x, &y)| x == y && x != EMPTY_SLOT)
        .count();
    agree as f64 / a.len() as f64
}

/// Set-based estimator that filters, sorts and dedups per call
/// (Algorithm 1 line 9 as first implemented — two allocations per
/// pair).
pub fn set_similarity(a: &Sketch, b: &Sketch) -> f64 {
    assert_eq!(a.len(), b.len(), "sketches of different length");
    let mut va: Vec<u64> = a
        .values()
        .iter()
        .copied()
        .filter(|&v| v != EMPTY_SLOT)
        .collect();
    let mut vb: Vec<u64> = b
        .values()
        .iter()
        .copied()
        .filter(|&v| v != EMPTY_SLOT)
        .collect();
    if va.is_empty() && vb.is_empty() {
        return 1.0;
    }
    va.sort_unstable();
    va.dedup();
    vb.sort_unstable();
    vb.dedup();
    exact_jaccard(&va, &vb)
}
