//! The Carter–Wegman universal hash family of Eq. 5.
//!
//! `h_i(x) = ((a_i·x + b_i) mod p) mod m` with `p` prime, `p > m`, and
//! `a_i, b_i` drawn uniformly from `{0, …, p−1}` (`a_i ≠ 0` so the map
//! is non-degenerate). Storing the `(a_i, b_i)` pairs replaces storing
//! `n` explicit permutations — the paper's "instead of storing π_i we
//! only need to store 2n numbers".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::prime::next_prime;

/// Parameters of a single hash function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashParams {
    /// Multiplier, in `1..p`.
    pub a: u64,
    /// Offset, in `0..p`.
    pub b: u64,
}

/// A family of `n` universal hash functions sharing `p` and `m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversalHashFamily {
    params: Vec<HashParams>,
    /// Prime modulus, `p > m` (the Pig script's `$DIV`).
    pub p: u64,
    /// Output range size (the feature-space size, `4^k`).
    pub m: u64,
}

impl UniversalHashFamily {
    /// Draw `n` hash functions for a feature space of size `m`,
    /// seeding the parameter draws for reproducibility. `p` is chosen
    /// as the smallest prime `> m`.
    pub fn new(n: usize, m: u64, seed: u64) -> UniversalHashFamily {
        assert!(n > 0, "need at least one hash function");
        assert!(m > 1, "feature space must have at least 2 values");
        let p = next_prime(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let params = (0..n)
            .map(|_| HashParams {
                a: rng.random_range(1..p),
                b: rng.random_range(0..p),
            })
            .collect();
        UniversalHashFamily { params, p, m }
    }

    /// Family for k-mer features.
    ///
    /// Eq. 5 sets `m = 4^k`, but for small k that range is *smaller
    /// than the feature sets themselves* (a 1 000 bp read covers ~600
    /// of the 1 024 possible 5-mers), so independent minima collide
    /// constantly and the estimator acquires a large positive bias —
    /// the `ablation_estimator` bench quantifies it. We therefore hash
    /// into `max(4^k, 2^31)`; for k ≥ 16 this *is* the paper's `4^k`.
    /// Use [`Self::for_kmer_size_paper_literal`] to reproduce Eq. 5
    /// exactly.
    pub fn for_kmer_size(k: usize, n: usize, seed: u64) -> UniversalHashFamily {
        assert!((1..=31).contains(&k), "k must be 1..=31");
        UniversalHashFamily::new(n, (1u64 << (2 * k)).max(1u64 << 31), seed)
    }

    /// The paper-literal Eq. 5 family with `m = 4^k` — biased at small
    /// k (see [`Self::for_kmer_size`]); kept for the ablation study.
    pub fn for_kmer_size_paper_literal(k: usize, n: usize, seed: u64) -> UniversalHashFamily {
        assert!((1..=31).contains(&k), "k must be 1..=31");
        UniversalHashFamily::new(n, 1u64 << (2 * k), seed)
    }

    /// Number of hash functions (the sketch length `n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the family is empty (never happens via constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Evaluate the `i`-th hash on feature `x`.
    #[inline]
    pub fn hash(&self, i: usize, x: u64) -> u64 {
        let HashParams { a, b } = self.params[i];
        let v = (a as u128 * x as u128 + b as u128) % self.p as u128;
        (v as u64) % self.m
    }

    /// The raw parameter list (for serialization / the Pig UDF).
    pub fn params(&self) -> &[HashParams] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let f1 = UniversalHashFamily::new(8, 1 << 10, 7);
        let f2 = UniversalHashFamily::new(8, 1 << 10, 7);
        assert_eq!(f1, f2);
        let f3 = UniversalHashFamily::new(8, 1 << 10, 8);
        assert_ne!(f1, f3);
    }

    #[test]
    fn outputs_in_range() {
        let f = UniversalHashFamily::new(16, 1 << 10, 1);
        for i in 0..f.len() {
            for x in [0u64, 1, 17, 1023, 9999] {
                assert!(f.hash(i, x) < f.m);
            }
        }
    }

    #[test]
    fn p_exceeds_m() {
        // k = 15: 4^k = 2^30 < 2^31, so the range floor applies.
        let f = UniversalHashFamily::for_kmer_size(15, 4, 0);
        assert_eq!(f.m, 1 << 31);
        assert!(f.p > f.m);
        // k = 16: 4^k = 2^32 dominates the floor.
        let f = UniversalHashFamily::for_kmer_size(16, 4, 0);
        assert_eq!(f.m, 1 << 32);
        // Paper-literal keeps m = 4^k.
        let f = UniversalHashFamily::for_kmer_size_paper_literal(5, 4, 0);
        assert_eq!(f.m, 1 << 10);
    }

    #[test]
    fn no_overflow_near_u64_max_range() {
        // k = 31 → m = 2^62; a·x can exceed u64, must use u128 internally.
        let f = UniversalHashFamily::for_kmer_size(31, 2, 3);
        let x = (1u64 << 62) - 1;
        for i in 0..f.len() {
            assert!(f.hash(i, x) < f.m);
        }
    }

    #[test]
    fn distinct_functions_disagree_somewhere() {
        let f = UniversalHashFamily::new(4, 1 << 16, 99);
        let xs: Vec<u64> = (0..64).collect();
        let mut all_same = true;
        for x in xs {
            if f.hash(0, x) != f.hash(1, x) {
                all_same = false;
                break;
            }
        }
        assert!(!all_same, "two independently drawn hashes were identical");
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of h(x) over many x should be near m/2 for a universal family.
        let m = 1u64 << 16;
        let f = UniversalHashFamily::new(1, m, 5);
        let n = 20_000u64;
        let mean = (0..n).map(|x| f.hash(0, x) as f64).sum::<f64>() / n as f64;
        let expected = m as f64 / 2.0;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean}, expected ≈ {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn zero_hashes_rejected() {
        UniversalHashFamily::new(0, 16, 0);
    }
}
