//! The Carter–Wegman universal hash family of Eq. 5.
//!
//! `h_i(x) = ((a_i·x + b_i) mod p) mod m` with `p` prime, `p > m`, and
//! `a_i, b_i` drawn uniformly from `{0, …, p−1}` (`a_i ≠ 0` so the map
//! is non-degenerate). Storing the `(a_i, b_i)` pairs replaces storing
//! `n` explicit permutations — the paper's "instead of storing π_i we
//! only need to store 2n numbers".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::prime::next_prime;

/// Parameters of a single hash function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashParams {
    /// Multiplier, in `1..p`.
    pub a: u64,
    /// Offset, in `0..p`.
    pub b: u64,
}

/// A family of `n` universal hash functions sharing `p` and `m`.
///
/// Construction precomputes a Barrett constant for `p`, so the hot
/// [`Self::hash`] path evaluates `((a·x + b) mod p) mod m` with
/// multiplies and conditional subtracts only — no 128-bit division.
/// The result is bit-identical to the textbook double-`%` form (the
/// `reference` module keeps that form as an oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversalHashFamily {
    params: Vec<HashParams>,
    /// Prime modulus, `p > m` (the Pig script's `$DIV`).
    pub p: u64,
    /// Output range size (the feature-space size, `4^k`).
    pub m: u64,
    /// `⌊2^127 / p⌋` when `p ≤ 2^63` (Barrett constant); 0 selects the
    /// plain-division fallback for oversized primes.
    mu: u128,
}

/// Barrett shift: `t = a·x + b < 2^63 · 2^64 = 2^127` whenever
/// `p ≤ 2^63`, which is exactly the bound the quotient-error proof
/// needs (see [`barrett_mod`]).
const BARRETT_SHIFT: u32 = 127;

/// `t mod p` via Barrett reduction, exact for `t < 2^127`.
///
/// With `µ = ⌊2^127/p⌋`, the estimate `q̂ = ⌊t·µ / 2^127⌋` satisfies
/// `q̂ ∈ {q−1, q}` for the true quotient `q = ⌊t/p⌋`: writing
/// `µ = (2^127 − r₀)/p` with `r₀ < p`, the shifted product is
/// `⌊t/p − t·r₀/(p·2^127)⌋`, and the subtracted term is `< t/2^127 < 1`.
/// One conditional subtract therefore corrects the remainder.
#[inline]
fn barrett_mod(t: u128, p: u64, mu: u128) -> u64 {
    let qhat = mul_shift_127(t, mu);
    let mut r = t.wrapping_sub(qhat.wrapping_mul(p as u128));
    if r >= p as u128 {
        r -= p as u128;
    }
    debug_assert!(r < p as u128);
    r as u64
}

/// `⌊t·µ / 2^127⌋` via a 256-bit product kept in four u64 limbs.
#[inline]
fn mul_shift_127(t: u128, mu: u128) -> u128 {
    let (t1, t0) = ((t >> 64) as u64, t as u64);
    let (m1, m0) = ((mu >> 64) as u64, mu as u64);
    let ll = t0 as u128 * m0 as u128;
    let (mid, mid_carry) = (t0 as u128 * m1 as u128).overflowing_add(t1 as u128 * m0 as u128);
    let hh = t1 as u128 * m1 as u128;
    let (low, low_carry) = ll.overflowing_add(mid << 64);
    let high = hh + (mid >> 64) + ((mid_carry as u128) << 64) + low_carry as u128;
    (high << 1) | (low >> BARRETT_SHIFT)
}

impl UniversalHashFamily {
    /// Draw `n` hash functions for a feature space of size `m`,
    /// seeding the parameter draws for reproducibility. `p` is chosen
    /// as the smallest prime `> m`.
    pub fn new(n: usize, m: u64, seed: u64) -> UniversalHashFamily {
        assert!(n > 0, "need at least one hash function");
        assert!(m > 1, "feature space must have at least 2 values");
        let p = next_prime(m);
        // Bertrand: the next prime after m sits below 2m. The second
        // reduction (`mod m`) relies on this to be a single conditional
        // subtract of a value already `< p`.
        assert!(p - m < m, "next_prime({m}) = {p} not below 2m");
        let mu = if p <= 1u64 << 63 {
            (1u128 << BARRETT_SHIFT) / p as u128
        } else {
            0
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let params = (0..n)
            .map(|_| HashParams {
                a: rng.random_range(1..p),
                b: rng.random_range(0..p),
            })
            .collect();
        UniversalHashFamily { params, p, m, mu }
    }

    /// Family for k-mer features.
    ///
    /// Eq. 5 sets `m = 4^k`, but for small k that range is *smaller
    /// than the feature sets themselves* (a 1 000 bp read covers ~600
    /// of the 1 024 possible 5-mers), so independent minima collide
    /// constantly and the estimator acquires a large positive bias —
    /// the `ablation_estimator` bench quantifies it. We therefore hash
    /// into `max(4^k, 2^31)`; for k ≥ 16 this *is* the paper's `4^k`.
    /// Use [`Self::for_kmer_size_paper_literal`] to reproduce Eq. 5
    /// exactly.
    pub fn for_kmer_size(k: usize, n: usize, seed: u64) -> UniversalHashFamily {
        assert!((1..=31).contains(&k), "k must be 1..=31");
        UniversalHashFamily::new(n, (1u64 << (2 * k)).max(1u64 << 31), seed)
    }

    /// The paper-literal Eq. 5 family with `m = 4^k` — biased at small
    /// k (see [`Self::for_kmer_size`]); kept for the ablation study.
    pub fn for_kmer_size_paper_literal(k: usize, n: usize, seed: u64) -> UniversalHashFamily {
        assert!((1..=31).contains(&k), "k must be 1..=31");
        UniversalHashFamily::new(n, 1u64 << (2 * k), seed)
    }

    /// Number of hash functions (the sketch length `n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the family is empty (never happens via constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Evaluate the `i`-th hash on feature `x`.
    #[inline]
    pub fn hash(&self, i: usize, x: u64) -> u64 {
        self.eval(self.params[i], x)
    }

    /// Evaluate one parameter pair on `x` — the hot kernel. Callers
    /// iterating the whole family (the sketcher's blocked loop) stream
    /// [`Self::params`] directly and skip the per-call index lookup.
    #[inline]
    pub fn eval(&self, hp: HashParams, x: u64) -> u64 {
        let t = hp.a as u128 * x as u128 + hp.b as u128;
        let v = if self.mu != 0 {
            barrett_mod(t, self.p, self.mu)
        } else {
            (t % self.p as u128) as u64
        };
        // v < p < 2m, so one conditional subtract completes `mod m`.
        if v >= self.m {
            v - self.m
        } else {
            v
        }
    }

    /// The raw parameter list (for serialization / the Pig UDF).
    pub fn params(&self) -> &[HashParams] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let f1 = UniversalHashFamily::new(8, 1 << 10, 7);
        let f2 = UniversalHashFamily::new(8, 1 << 10, 7);
        assert_eq!(f1, f2);
        let f3 = UniversalHashFamily::new(8, 1 << 10, 8);
        assert_ne!(f1, f3);
    }

    #[test]
    fn outputs_in_range() {
        let f = UniversalHashFamily::new(16, 1 << 10, 1);
        for i in 0..f.len() {
            for x in [0u64, 1, 17, 1023, 9999] {
                assert!(f.hash(i, x) < f.m);
            }
        }
    }

    #[test]
    fn p_exceeds_m() {
        // k = 15: 4^k = 2^30 < 2^31, so the range floor applies.
        let f = UniversalHashFamily::for_kmer_size(15, 4, 0);
        assert_eq!(f.m, 1 << 31);
        assert!(f.p > f.m);
        // k = 16: 4^k = 2^32 dominates the floor.
        let f = UniversalHashFamily::for_kmer_size(16, 4, 0);
        assert_eq!(f.m, 1 << 32);
        // Paper-literal keeps m = 4^k.
        let f = UniversalHashFamily::for_kmer_size_paper_literal(5, 4, 0);
        assert_eq!(f.m, 1 << 10);
    }

    #[test]
    fn no_overflow_near_u64_max_range() {
        // k = 31 → m = 2^62; a·x can exceed u64, must use u128 internally.
        let f = UniversalHashFamily::for_kmer_size(31, 2, 3);
        let x = (1u64 << 62) - 1;
        for i in 0..f.len() {
            assert!(f.hash(i, x) < f.m);
        }
    }

    #[test]
    fn distinct_functions_disagree_somewhere() {
        let f = UniversalHashFamily::new(4, 1 << 16, 99);
        let xs: Vec<u64> = (0..64).collect();
        let mut all_same = true;
        for x in xs {
            if f.hash(0, x) != f.hash(1, x) {
                all_same = false;
                break;
            }
        }
        assert!(!all_same, "two independently drawn hashes were identical");
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of h(x) over many x should be near m/2 for a universal family.
        let m = 1u64 << 16;
        let f = UniversalHashFamily::new(1, m, 5);
        let n = 20_000u64;
        let mean = (0..n).map(|x| f.hash(0, x) as f64).sum::<f64>() / n as f64;
        let expected = m as f64 / 2.0;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean}, expected ≈ {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn zero_hashes_rejected() {
        UniversalHashFamily::new(0, 16, 0);
    }

    #[test]
    fn barrett_bit_identical_to_division() {
        // Mixed operating points: tiny paper-literal ranges, the 2^31
        // floor, a non-power-of-two m, and the k = 31 ceiling (2^62).
        for m in [16u64, 1 << 10, 1 << 31, (1 << 31) + 12345, 1 << 62] {
            let f = UniversalHashFamily::new(4, m, m ^ 0xA5A5);
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..2_000 {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                for i in 0..f.len() {
                    assert_eq!(
                        f.hash(i, x),
                        crate::reference::hash(&f, i, x),
                        "m = {m}, i = {i}, x = {x}"
                    );
                }
            }
            for x in [0, 1, m - 1, m, m + 1, u64::MAX] {
                for i in 0..f.len() {
                    assert_eq!(f.hash(i, x), crate::reference::hash(&f, i, x));
                }
            }
        }
    }

    #[test]
    fn oversized_prime_falls_back_to_division() {
        // p > 2^63 disables the Barrett constant; the fallback path
        // must still match the oracle exactly.
        let f = UniversalHashFamily::new(2, 1u64 << 63, 7);
        assert!(f.p > 1u64 << 63);
        for x in [0u64, 1, 12_345, (1 << 63) - 1, u64::MAX] {
            for i in 0..f.len() {
                assert_eq!(f.hash(i, x), crate::reference::hash(&f, i, x));
            }
        }
    }
}
