//! Property-based tests for the minwise-hashing substrate.

use proptest::prelude::*;

use mrmc_minhash::{
    exact_jaccard, is_prime, next_prime, positional_similarity, set_similarity, BandingScheme,
    MinHasher, Sketch, UniversalHashFamily,
};

fn dna(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        min_len..max_len,
    )
}

/// Trial-division reference for primality.
fn is_prime_naive(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

proptest! {
    /// Miller–Rabin agrees with trial division on small integers.
    #[test]
    fn primality_matches_naive(n in 0u64..50_000) {
        prop_assert_eq!(is_prime(n), is_prime_naive(n));
    }

    /// next_prime returns a prime strictly above its input with no
    /// prime in between.
    #[test]
    fn next_prime_is_next(n in 0u64..20_000) {
        let p = next_prime(n);
        prop_assert!(p > n);
        prop_assert!(is_prime(p));
        for q in (n + 1)..p {
            prop_assert!(!is_prime(q));
        }
    }

    /// Hash outputs stay within the configured range.
    #[test]
    fn hash_range(m_exp in 2u32..30, x in any::<u64>(), seed in any::<u64>()) {
        let m = 1u64 << m_exp;
        let family = UniversalHashFamily::new(4, m, seed);
        for i in 0..family.len() {
            prop_assert!(family.hash(i, x) < m);
        }
    }

    /// Sketches are permutation- and multiplicity-invariant over the
    /// feature multiset.
    #[test]
    fn sketch_set_semantics(mut kmers in proptest::collection::vec(0u64..1024, 1..64), seed in any::<u64>()) {
        let hasher = MinHasher::for_kmer_size(5, 16, seed);
        let s1 = hasher.sketch_kmers(kmers.iter().copied());
        kmers.reverse();
        let doubled: Vec<u64> = kmers.iter().chain(kmers.iter()).copied().collect();
        let s2 = hasher.sketch_kmers(doubled);
        prop_assert_eq!(s1, s2);
    }

    /// Similarity estimators are bounded, symmetric, and reflexive on
    /// non-degenerate sketches.
    #[test]
    fn estimator_axioms(a in dna(8, 80), b in dna(8, 80), seed in any::<u64>()) {
        let hasher = MinHasher::for_kmer_size(4, 32, seed);
        let sa = hasher.sketch_sequence(&a).unwrap();
        let sb = hasher.sketch_sequence(&b).unwrap();
        for f in [positional_similarity, set_similarity] {
            let sim = f(&sa, &sb);
            prop_assert!((0.0..=1.0).contains(&sim));
            prop_assert!((sim - f(&sb, &sa)).abs() < 1e-12);
        }
        prop_assert_eq!(positional_similarity(&sa, &sa), 1.0);
        prop_assert_eq!(set_similarity(&sa, &sa), 1.0);
    }

    /// Exact Jaccard axioms on sorted deduplicated sets.
    #[test]
    fn exact_jaccard_axioms(
        a in proptest::collection::btree_set(0u64..500, 0..50),
        b in proptest::collection::btree_set(0u64..500, 0..50),
    ) {
        let av: Vec<u64> = a.iter().copied().collect();
        let bv: Vec<u64> = b.iter().copied().collect();
        let j = exact_jaccard(&av, &bv);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - exact_jaccard(&bv, &av)).abs() < 1e-12);
        prop_assert_eq!(exact_jaccard(&av, &av), 1.0);
        // Disjoint sets → 0 (when at least one non-empty).
        if !av.is_empty() && a.intersection(&b).count() == 0 {
            prop_assert_eq!(j, 0.0);
        }
    }

    /// The banding superset property the whole candidate pipeline
    /// rests on: under a tuned scheme, *every* pair with positional
    /// similarity ≥ θ collides in some band (pigeonhole exactness) —
    /// wherever the disagreements fall and whatever θ and the sketch
    /// width are. The candidate relation is also symmetric and
    /// reflexive.
    #[test]
    fn banding_candidates_cover_every_theta_pair(
        base in proptest::collection::vec(0u64..1_000_000, 10..80),
        flip_at in proptest::collection::vec(any::<usize>(), 0..10),
        flip_with in proptest::collection::vec(1u64..1_000_000, 0..10),
        theta in 0.5f64..=1.0,
    ) {
        let n = base.len();
        let scheme = BandingScheme::tune(n, theta);
        prop_assert!(scheme.guarantees_recall(n, theta));
        let mut other = base.clone();
        for (idx, delta) in flip_at.iter().zip(&flip_with) {
            let i = idx % n;
            other[i] = base[i] ^ delta;
        }
        let a = Sketch::from_values(base);
        let b = Sketch::from_values(other);
        let sim = positional_similarity(&a, &b);
        if sim >= theta {
            prop_assert!(
                scheme.collides(&a, &b),
                "sim {} ≥ θ {} must be a candidate under {:?}",
                sim, theta, scheme
            );
        }
        prop_assert_eq!(scheme.collides(&a, &b), scheme.collides(&b, &a));
        prop_assert!(scheme.collides(&a, &a));
    }

    /// Tuned schemes are well-formed for any width and threshold:
    /// `b·r ≤ n`, recall is guaranteed at the tuned θ, and the
    /// advertised exact-recall threshold is the smallest *achievable*
    /// similarity at or above θ (agreement counts are integers, so the
    /// two differ only by ceil-to-1/n discretization).
    #[test]
    fn tuned_scheme_well_formed(n in 1usize..257, theta in 0.0f64..=1.0) {
        let s = BandingScheme::tune(n, theta);
        prop_assert!(s.bands >= 1);
        prop_assert!(s.rows >= 1);
        prop_assert!(s.covered() <= n);
        if theta > 0.0 {
            prop_assert!(s.guarantees_recall(n, theta));
            let exact = s.exact_recall_threshold(n);
            prop_assert!(exact >= theta);
            // At most one agreement step above θ.
            prop_assert!(exact - theta < 1.0 / n as f64 + 1e-12);
        }
    }

    /// Subset monotonicity: J(a, a∪b) ≥ J(a, b).
    #[test]
    fn jaccard_superset_monotone(
        a in proptest::collection::btree_set(0u64..200, 1..30),
        b in proptest::collection::btree_set(0u64..200, 1..30),
    ) {
        let av: Vec<u64> = a.iter().copied().collect();
        let bv: Vec<u64> = b.iter().copied().collect();
        let uv: Vec<u64> = a.union(&b).copied().collect();
        prop_assert!(exact_jaccard(&av, &uv) >= exact_jaccard(&av, &bv) - 1e-12);
    }
}
