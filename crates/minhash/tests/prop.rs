//! Property-based tests for the minwise-hashing substrate.

use proptest::prelude::*;

use mrmc_minhash::{
    exact_jaccard, is_prime, next_prime, positional_similarity, set_similarity, MinHasher,
    UniversalHashFamily,
};

fn dna(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        min_len..max_len,
    )
}

/// Trial-division reference for primality.
fn is_prime_naive(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

proptest! {
    /// Miller–Rabin agrees with trial division on small integers.
    #[test]
    fn primality_matches_naive(n in 0u64..50_000) {
        prop_assert_eq!(is_prime(n), is_prime_naive(n));
    }

    /// next_prime returns a prime strictly above its input with no
    /// prime in between.
    #[test]
    fn next_prime_is_next(n in 0u64..20_000) {
        let p = next_prime(n);
        prop_assert!(p > n);
        prop_assert!(is_prime(p));
        for q in (n + 1)..p {
            prop_assert!(!is_prime(q));
        }
    }

    /// Hash outputs stay within the configured range.
    #[test]
    fn hash_range(m_exp in 2u32..30, x in any::<u64>(), seed in any::<u64>()) {
        let m = 1u64 << m_exp;
        let family = UniversalHashFamily::new(4, m, seed);
        for i in 0..family.len() {
            prop_assert!(family.hash(i, x) < m);
        }
    }

    /// Sketches are permutation- and multiplicity-invariant over the
    /// feature multiset.
    #[test]
    fn sketch_set_semantics(mut kmers in proptest::collection::vec(0u64..1024, 1..64), seed in any::<u64>()) {
        let hasher = MinHasher::for_kmer_size(5, 16, seed);
        let s1 = hasher.sketch_kmers(kmers.iter().copied());
        kmers.reverse();
        let doubled: Vec<u64> = kmers.iter().chain(kmers.iter()).copied().collect();
        let s2 = hasher.sketch_kmers(doubled);
        prop_assert_eq!(s1, s2);
    }

    /// Similarity estimators are bounded, symmetric, and reflexive on
    /// non-degenerate sketches.
    #[test]
    fn estimator_axioms(a in dna(8, 80), b in dna(8, 80), seed in any::<u64>()) {
        let hasher = MinHasher::for_kmer_size(4, 32, seed);
        let sa = hasher.sketch_sequence(&a).unwrap();
        let sb = hasher.sketch_sequence(&b).unwrap();
        for f in [positional_similarity, set_similarity] {
            let sim = f(&sa, &sb);
            prop_assert!((0.0..=1.0).contains(&sim));
            prop_assert!((sim - f(&sb, &sa)).abs() < 1e-12);
        }
        prop_assert_eq!(positional_similarity(&sa, &sa), 1.0);
        prop_assert_eq!(set_similarity(&sa, &sa), 1.0);
    }

    /// Exact Jaccard axioms on sorted deduplicated sets.
    #[test]
    fn exact_jaccard_axioms(
        a in proptest::collection::btree_set(0u64..500, 0..50),
        b in proptest::collection::btree_set(0u64..500, 0..50),
    ) {
        let av: Vec<u64> = a.iter().copied().collect();
        let bv: Vec<u64> = b.iter().copied().collect();
        let j = exact_jaccard(&av, &bv);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - exact_jaccard(&bv, &av)).abs() < 1e-12);
        prop_assert_eq!(exact_jaccard(&av, &av), 1.0);
        // Disjoint sets → 0 (when at least one non-empty).
        if !av.is_empty() && a.intersection(&b).count() == 0 {
            prop_assert_eq!(j, 0.0);
        }
    }

    /// Subset monotonicity: J(a, a∪b) ≥ J(a, b).
    #[test]
    fn jaccard_superset_monotone(
        a in proptest::collection::btree_set(0u64..200, 1..30),
        b in proptest::collection::btree_set(0u64..200, 1..30),
    ) {
        let av: Vec<u64> = a.iter().copied().collect();
        let bv: Vec<u64> = b.iter().copied().collect();
        let uv: Vec<u64> = a.union(&b).copied().collect();
        prop_assert!(exact_jaccard(&av, &uv) >= exact_jaccard(&av, &bv) - 1e-12);
    }
}
