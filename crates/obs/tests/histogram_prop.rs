//! Property-based tests for the metrics plane's bucket math.
//!
//! The log2 histogram is the load-bearing primitive of the live
//! metrics plane: every latency percentile the server reports and
//! every `engine.*` distribution the benches pin byte-for-byte flows
//! through `bucket_index` / `percentile` / `merge`. These properties
//! hold for *any* input, including the u64 overflow edges the unit
//! tests only spot-check.

use proptest::prelude::*;

use mrmc_obs::metrics::{bucket_hi, bucket_index, bucket_lo, HISTOGRAM_BUCKETS};
use mrmc_obs::Histogram;

fn record_all(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Values that stress every bucket: small ints, powers of two and
/// their neighbours, and the saturation edge.
fn edge_heavy_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        (0u32..64).prop_map(|s| 1u64 << s),
        (1u32..64).prop_map(|s| (1u64 << s) - 1),
        (1u32..64).prop_map(|s| (1u64 << s) + 1),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        any::<u64>(),
    ]
}

proptest! {
    /// Every value lands in the bucket whose [lo, hi] range contains
    /// it, and bucket bounds tile the u64 line without gaps.
    #[test]
    fn bucket_bounds_contain_their_values(v in edge_heavy_value()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_lo(i) <= v, "lo({i}) = {} > {v}", bucket_lo(i));
        prop_assert!(v <= bucket_hi(i), "hi({i}) = {} < {v}", bucket_hi(i));
        if i + 1 < HISTOGRAM_BUCKETS {
            prop_assert_eq!(bucket_hi(i).wrapping_add(1), bucket_lo(i + 1));
        }
    }

    /// Count is exact, sum saturates (never wraps), and min/max are
    /// the true extremes of what was recorded.
    #[test]
    fn aggregates_track_the_recorded_values(
        values in proptest::collection::vec(edge_heavy_value(), 1..64),
    ) {
        let h = record_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact_sum = values
            .iter()
            .fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(h.sum(), exact_sum);
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
    }

    /// Percentiles are monotone in p and clamped to the observed
    /// [min, max] — a reported p99 can never undershoot the median or
    /// exceed the worst sample.
    #[test]
    fn percentiles_are_monotone_and_clamped(
        values in proptest::collection::vec(edge_heavy_value(), 1..64),
    ) {
        let h = record_all(&values);
        let ps = [0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0];
        let qs: Vec<u64> = ps.iter().map(|&p| h.percentile(p)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles not monotone: {qs:?}");
        }
        for &q in &qs {
            prop_assert!(h.min().unwrap() <= q && q <= h.max().unwrap());
        }
    }

    /// Merging two histograms is identical to recording the
    /// concatenation — in every field, not just the summaries. This is
    /// what makes per-thread recording + a merge safe.
    #[test]
    fn merge_equals_concatenated_recording(
        a in proptest::collection::vec(edge_heavy_value(), 0..48),
        b in proptest::collection::vec(edge_heavy_value(), 0..48),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(merged, record_all(&concat));
    }

    /// A snapshot delta of two cumulative states recovers exactly the
    /// later recordings' counts per bucket.
    #[test]
    fn delta_recovers_the_later_recordings(
        earlier in proptest::collection::vec(edge_heavy_value(), 0..32),
        later in proptest::collection::vec(edge_heavy_value(), 0..32),
    ) {
        let base = record_all(&earlier);
        let mut cumulative = base.clone();
        for &v in &later {
            cumulative.record(v);
        }
        let delta = cumulative.delta(&base);
        prop_assert_eq!(delta.count(), later.len() as u64);
        let expect = record_all(&later);
        let got: Vec<(usize, u64)> = delta.nonempty_buckets().collect();
        let want: Vec<(usize, u64)> = expect.nonempty_buckets().collect();
        prop_assert_eq!(got, want);
    }

    /// `from_parts` round-trips any recorded histogram through its
    /// sparse wire representation bit-for-bit.
    #[test]
    fn sparse_roundtrip_is_lossless(
        values in proptest::collection::vec(edge_heavy_value(), 0..48),
    ) {
        let h = record_all(&values);
        let sparse: Vec<(usize, u64)> = h.nonempty_buckets().collect();
        let rebuilt = Histogram::from_parts(
            h.count(),
            h.sum(),
            h.min().unwrap_or(u64::MAX),
            h.max().unwrap_or(0),
            sparse,
        ).expect("valid parts");
        prop_assert_eq!(rebuilt, h);
    }
}
