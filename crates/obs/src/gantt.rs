//! ASCII Gantt rendering of a trace ledger.
//!
//! One row per (job, display lane); each span becomes a bar of
//! category glyphs (`#` compute, `=` shuffle, `.` overhead, `!`
//! recovery, `@` serve, `%` pig operator) scaled to a fixed terminal
//! width. Useful as a quick
//! sanity view in bench output and CI logs without opening Perfetto.

use crate::chrome::display_lanes;
use crate::trace::{Category, TraceLedger};

fn glyph(cat: Category) -> char {
    match cat {
        Category::Compute => '#',
        Category::Shuffle => '=',
        Category::Overhead => '.',
        Category::Recovery => '!',
        Category::Serve => '@',
        Category::Pig => '%',
    }
}

/// Render the ledger as an ASCII Gantt chart `width` columns wide
/// (clamped to at least 20). Rows are grouped by job in ordinal
/// order, lanes ascending within a job.
pub fn render_gantt(ledger: &TraceLedger, width: usize) -> String {
    let width = width.max(20);
    if ledger.spans.is_empty() {
        return String::from("(empty trace)\n");
    }
    let origin = ledger.origin_ns();
    let span_total = ledger.makespan_ns().max(1);
    let scale = |ns: u64| -> usize {
        ((ns.saturating_sub(origin)) as u128 * width as u128 / span_total as u128) as usize
    };

    let lanes = display_lanes(&ledger.spans);
    let mut rows: Vec<(u32, usize)> = ledger
        .spans
        .iter()
        .zip(&lanes)
        .map(|(s, &l)| (s.job, l))
        .collect();
    rows.sort_unstable();
    rows.dedup();

    let label_w = rows
        .iter()
        .map(|(job, lane)| format!("j{job}/L{lane}").len())
        .max()
        .unwrap_or(6);

    let mut out = String::new();
    let total_ms = span_total as f64 / 1.0e6;
    out.push_str(&format!(
        "{:label_w$} |{}| {:.3} ms total  [#=compute ==shuffle .=overhead !=recovery]\n",
        "lane",
        "-".repeat(width),
        total_ms
    ));
    let mut last_job = u32::MAX;
    for (job, lane) in rows {
        if job != last_job {
            let name = ledger
                .jobs
                .get(job as usize)
                .map(String::as_str)
                .unwrap_or("?");
            out.push_str(&format!("-- job {job}: {name}\n"));
            last_job = job;
        }
        let mut line: Vec<char> = vec![' '; width];
        for (span, &span_lane) in ledger.spans.iter().zip(&lanes) {
            if span.job != job || span_lane != lane {
                continue;
            }
            let a = scale(span.start_ns).min(width - 1);
            let b = scale(span.end_ns()).clamp(a + 1, width);
            for cell in line.iter_mut().take(b).skip(a) {
                *cell = glyph(span.category);
            }
        }
        let bar: String = line.into_iter().collect();
        out.push_str(&format!("{:label_w$} |{bar}|\n", format!("j{job}/L{lane}")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanDraft, Tracer};

    #[test]
    fn empty_ledger_renders_placeholder() {
        assert_eq!(render_gantt(&Tracer::new().ledger(), 60), "(empty trace)\n");
    }

    #[test]
    fn bars_use_category_glyphs() {
        let t = Tracer::new();
        let j = t.begin_job("j");
        let m = t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .task_attempt(0, 0)
                .lane(0)
                .at(0, 500),
        );
        t.add_span(
            SpanDraft::new(j, "shuffle", Category::Shuffle)
                .lane(0)
                .dep(m)
                .at(500, 500),
        );
        let chart = render_gantt(&t.ledger(), 40);
        assert!(chart.contains("-- job 0: j"));
        assert!(chart.contains('#'));
        assert!(chart.contains('='));
        // Compute occupies the left half, shuffle the right.
        let row = chart.lines().find(|l| l.contains("j0/L0")).unwrap();
        let bar: &str = row.split('|').nth(1).unwrap();
        assert_eq!(bar.len(), 40);
        assert!(bar.trim_end().starts_with('#'));
        assert!(bar.trim_end().ends_with('='));
    }

    #[test]
    fn separate_lanes_get_separate_rows() {
        let t = Tracer::new();
        let j = t.begin_job("sim");
        t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .lane(0)
                .at(0, 100),
        );
        t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .lane(1)
                .at(0, 100),
        );
        let chart = render_gantt(&t.ledger(), 30);
        assert!(chart.contains("j0/L0"));
        assert!(chart.contains("j0/L1"));
    }
}
