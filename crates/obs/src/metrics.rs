//! Live metrics plane: a deterministic registry of counters, gauges
//! and log2-bucketed histograms.
//!
//! The span ledger ([`crate::trace`]) answers *why a finished job was
//! slow*; this module answers *what a running system is doing*. The
//! design constraints mirror the tracer's:
//!
//! * **Deterministic.** Every snapshot lists metrics in sorted name
//!   order (the registry is `BTreeMap`-backed), carries no wall-clock
//!   timestamps of its own, and two runs that record the same values
//!   in any order produce byte-identical [`MetricsSnapshot::render_text`]
//!   / JSON output. Engine metrics are exported from [`StageReport`]
//!   counters *after* a run, so a fixed seed (and a fixed chaos plan)
//!   pins the whole snapshot.
//! * **Passive.** Recording is a single short mutex hold; the engine
//!   hot paths never touch the registry — they keep their existing
//!   per-task local counters and the pipeline exports the totals once
//!   per run. The serving layer records per *request*, not per read.
//! * **Exact-from-bucket percentiles.** Histograms bucket values by
//!   bit width (65 log2 buckets covering all of `u64`), so
//!   `percentile` walks the cumulative counts and returns the upper
//!   bound of the bucket containing the requested rank, clamped to
//!   the observed `[min, max]`. No interpolation, no floats in the
//!   stored state — merging and percentile extraction are exact and
//!   associative.
//!
//! [`StageReport`]: ../../mrmc_mapreduce/pipeline/struct.StageReport.html

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Json;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`, up to bucket 64 for values
/// with the top bit set.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: its bit width (0 for 0).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        65.. => u64::MAX,
        _ => ((1u128 << i) - 1) as u64,
    }
}

/// A log2-bucketed histogram over `u64` values (latencies in
/// microseconds, batch sizes, byte counts). All arithmetic saturates,
/// so pathological inputs (`u64::MAX` repeatedly) degrade gracefully
/// instead of wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (bucket-wise). Merging is
    /// associative and commutative, so sharded recording reduces to
    /// the same state as serial recording.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`), computed exactly from
    /// the bucket boundaries: the upper bound of the bucket containing
    /// the `ceil(p/100 · count)`-th smallest value, clamped to the
    /// observed `[min, max]`. Returns 0 for an empty histogram.
    /// Monotone in `p` by construction.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_hi(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs in ascending
    /// index order — the sparse form used on the wire and in JSON.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuild a histogram from its wire form. Returns `None` if any
    /// bucket index is out of range — decoders map that to a payload
    /// error rather than panicking.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        sparse: impl IntoIterator<Item = (usize, u64)>,
    ) -> Option<Histogram> {
        let mut h = Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count,
            sum,
            min,
            max,
        };
        for (i, c) in sparse {
            if i >= HISTOGRAM_BUCKETS {
                return None;
            }
            h.buckets[i] = h.buckets[i].saturating_add(c);
        }
        Some(h)
    }

    /// Bucket-wise difference `self − earlier` (saturating), for
    /// rate-over-interval views. `min`/`max` cannot be recovered from
    /// two cumulative states, so the delta's bounds are re-derived
    /// from its own non-empty bucket range.
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for (i, (b, e)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            d.buckets[i] = b.saturating_sub(*e);
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        let lo = d.nonempty_buckets().next().map(|(i, _)| bucket_lo(i));
        let hi = d.nonempty_buckets().last().map(|(i, _)| bucket_hi(i));
        d.min = lo.unwrap_or(u64::MAX).max(self.min);
        d.max = hi.unwrap_or(0).min(self.max);
        d
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: a named set of counters (monotone u64), gauges
/// (instantaneous i64) and [`Histogram`]s behind one mutex.
///
/// Cloneable handles are deliberately absent — call sites pass
/// `&MetricsRegistry` (usually inside an `Arc`) and name metrics at
/// the recording site, which keeps the full key set greppable. See
/// DESIGN.md §6 for the key glossary.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add to a counter (creating it at 0).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().unwrap();
        let c = inner.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(v);
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&self, name: &str, v: i64) {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .insert(name.to_string(), v);
    }

    /// Adjust a gauge by a signed delta (creating it at 0).
    pub fn gauge_add(&self, name: &str, delta: i64) {
        let mut inner = self.inner.lock().unwrap();
        let g = inner.gauges.entry(name.to_string()).or_insert(0);
        *g = g.saturating_add(delta);
    }

    /// Record one value into a histogram (creating it empty).
    pub fn observe(&self, name: &str, v: u64) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Record a duration into a histogram, in whole microseconds.
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Fold a pre-aggregated histogram into a named histogram.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// A point-in-time copy of every metric, deterministically ordered
    /// by name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Drop every metric (for reuse across bench iterations).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]: plain sorted
/// vectors, safe to ship over the wire, diff, or render.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// True when no metrics have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating — a metric absent earlier
    /// counts from 0), gauges keep their later instantaneous value.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let prior_c: BTreeMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let prior_h: BTreeMap<&str, &Histogram> = earlier
            .histograms
            .iter()
            .map(|(k, h)| (k.as_str(), h))
            .collect();
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(prior_c.get(k.as_str()).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let d = match prior_h.get(k.as_str()) {
                        Some(e) => h.delta(e),
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// One line per metric, sorted — stable across runs for
    /// deterministic inputs, so tests can pin the exact bytes.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k} = {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k} count={} sum={} min={} p50={} p95={} p99={} max={}\n",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max().unwrap_or(0),
            ));
        }
        if out.is_empty() {
            out.push_str("(no metrics)\n");
        }
        out
    }

    /// The snapshot as a JSON document (shared [`Json`] builder):
    /// counters and gauges as objects, each histogram as summary
    /// stats + sparse `[bucket, count]` pairs.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Json::obj([
                                    ("count", Json::UInt(h.count())),
                                    ("sum", Json::UInt(h.sum())),
                                    ("min", Json::UInt(h.min().unwrap_or(0))),
                                    ("p50", Json::UInt(h.percentile(50.0))),
                                    ("p95", Json::UInt(h.percentile(95.0))),
                                    ("p99", Json::UInt(h.percentile(99.0))),
                                    ("max", Json::UInt(h.max().unwrap_or(0))),
                                    (
                                        "buckets",
                                        Json::arr(h.nonempty_buckets().map(|(i, c)| {
                                            Json::arr([Json::from(i), Json::UInt(c)])
                                        })),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i);
            assert_eq!(bucket_index(bucket_hi(i)), i);
        }
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_hi(i - 1) + 1, bucket_lo(i));
        }
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn percentiles_exact_from_buckets() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 rank is 50, which lands in bucket 6 ([32, 63]); the
        // exact-from-bucket answer is the bucket's upper bound.
        assert_eq!(h.percentile(50.0), 63);
        assert_eq!(h.percentile(100.0), 100); // clamped to observed max
        assert_eq!(h.percentile(0.0), 1); // rank 1 → bucket 1, clamped to min
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
    }

    #[test]
    fn single_value_histogram_is_tight() {
        let mut h = Histogram::new();
        h.record(777);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 777);
        }
        assert_eq!(h.min(), Some(777));
        assert_eq!(h.max(), Some(777));
    }

    #[test]
    fn merge_matches_serial_recording() {
        let values = [0u64, 1, 5, 5, 900, 1 << 40, u64::MAX];
        let mut serial = Histogram::new();
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in values.iter().enumerate() {
            serial.record(v);
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a, serial);
    }

    #[test]
    fn overflow_saturates() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(50.0), u64::MAX);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_order_independent() {
        let m1 = MetricsRegistry::new();
        m1.counter_add("b", 2);
        m1.counter_add("a", 1);
        m1.gauge_set("z", -3);
        m1.observe("lat", 10);
        let m2 = MetricsRegistry::new();
        m2.observe("lat", 10);
        m2.gauge_set("z", -3);
        m2.counter_add("a", 1);
        m2.counter_add("b", 2);
        assert_eq!(m1.snapshot(), m2.snapshot());
        assert_eq!(m1.snapshot().render_text(), m2.snapshot().render_text());
        let snap = m1.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn delta_semantics() {
        let m = MetricsRegistry::new();
        m.counter_add("c", 5);
        m.gauge_set("g", 10);
        m.observe("h", 4);
        let before = m.snapshot();
        m.counter_add("c", 3);
        m.gauge_set("g", 7);
        m.observe("h", 4);
        m.observe("h", 1 << 20);
        let after = m.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter("c"), Some(3));
        assert_eq!(d.gauge("g"), Some(7));
        let h = d.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), (1 << 20) + 4);
    }

    #[test]
    fn from_parts_roundtrips_and_rejects_bad_buckets() {
        let mut h = Histogram::new();
        for v in [3u64, 99, 1 << 30] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h.nonempty_buckets().collect();
        let back = Histogram::from_parts(
            h.count(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
            sparse,
        )
        .unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_parts(1, 1, 1, 1, [(HISTOGRAM_BUCKETS, 1)]).is_none());
    }

    #[test]
    fn render_text_pins_exact_bytes() {
        let m = MetricsRegistry::new();
        m.counter_add("engine.shuffle.pairs", 42);
        m.gauge_set("serve.queue_depth", 3);
        m.observe("serve.batch_reads", 8);
        assert_eq!(
            m.snapshot().render_text(),
            "counter   engine.shuffle.pairs = 42\n\
             gauge     serve.queue_depth = 3\n\
             histogram serve.batch_reads count=1 sum=8 min=8 p50=8 p95=8 p99=8 max=8\n"
        );
        assert_eq!(MetricsSnapshot::default().render_text(), "(no metrics)\n");
    }

    #[test]
    fn json_renders_via_shared_builder() {
        let m = MetricsRegistry::new();
        m.counter_add("c", 1);
        m.observe("h", 2);
        let doc = m.snapshot().to_json().pretty();
        assert!(doc.contains("\"counters\""));
        assert!(doc.contains("\"p95\""));
        assert!(doc.contains("\"buckets\""));
    }
}
