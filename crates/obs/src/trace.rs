//! The span ledger: spans, instant events, and the [`Tracer`] that
//! collects them.
//!
//! # Determinism contract
//!
//! Producers must append to the ledger from *deterministic,
//! single-threaded* program points (the engine merges worker-local
//! attempt buffers after each phase's pool drains; the simulator is
//! single-threaded by construction). Under that discipline span ids,
//! dependency edges, ordering and metadata depend only on the input
//! and the fault plan — never on thread timing — so
//! [`TraceLedger::signature`] is bit-identical across runs with the
//! same seed. Only `start_ns` / `dur_ns` / `ts_ns` carry wall-clock
//! and are excluded from the signature.

use std::sync::Mutex;
use std::time::Instant;

/// Identifier of a span within one ledger (assigned sequentially).
pub type SpanId = u64;

/// Coarse cost category of a span, the unit of critical-path
/// attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// First-attempt task work (map or reduce bodies).
    Compute,
    /// Moving intermediate data: the shuffle barrier / copy phase.
    Shuffle,
    /// Fixed costs: job setup/teardown, task launch.
    Overhead,
    /// Work that exists only because something failed: retries,
    /// speculative backups, re-executed maps, fetch retries.
    Recovery,
    /// Request-path work in the serving layer (`mrmc-server`):
    /// micro-batch admission waits and incremental assignment. Serve
    /// spans are emitted from concurrent connection/worker threads, so
    /// unlike engine spans they carry no determinism contract — they
    /// are excluded from signature-equality tests.
    Serve,
    /// One Pig operator executing in the script driver
    /// (FOREACH/FILTER/GROUP/…). Operator spans *wrap* the engine
    /// spans of the Map-Reduce jobs they lower to, so a scripted run's
    /// critical path can be attributed operator-by-operator (the span
    /// name carries the operator and alias, e.g. `pig:foreach:C`).
    Pig,
}

/// All categories, in attribution-report order.
pub const CATEGORIES: [Category; 6] = [
    Category::Compute,
    Category::Shuffle,
    Category::Overhead,
    Category::Recovery,
    Category::Serve,
    Category::Pig,
];

impl Category {
    /// Stable lowercase name (used in exports and reports).
    pub fn name(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Shuffle => "shuffle",
            Category::Overhead => "overhead",
            Category::Recovery => "recovery",
            Category::Serve => "serve",
            Category::Pig => "pig",
        }
    }
}

/// One completed span: a named interval of work attributed to a job,
/// optionally to a task attempt and a scheduling lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Ledger-unique id (sequential).
    pub id: SpanId,
    /// Job ordinal within the ledger (assigned by [`Tracer::begin_job`]).
    pub job: u32,
    /// Span name ("map", "reduce", "shuffle", "job:setup", …).
    pub name: String,
    /// Cost category for critical-path attribution.
    pub category: Category,
    /// Task index within its phase, when the span is a task attempt.
    pub task: Option<usize>,
    /// Attempt ordinal (retries and speculative backups get fresh ids).
    pub attempt: Option<usize>,
    /// Scheduling lane (virtual slot) when known — simulated traces
    /// know their slot; real-pool traces leave it `None` and the
    /// exporters assign display lanes greedily.
    pub lane: Option<usize>,
    /// Start, nanoseconds since the tracer epoch (wall-clock for real
    /// runs, simulated time for simulated runs).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Spans this one could not start before: retry edges (previous
    /// attempt of the same task), barrier edges (shuffle ← all maps,
    /// reduce ← shuffle), and lane edges (previous span on the same
    /// simulated slot).
    pub deps: Vec<SpanId>,
    /// Small key/value annotations (counts, flags, error text).
    pub meta: Vec<(String, String)>,
}

impl Span {
    /// End timestamp, nanoseconds since epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A span under construction: everything except the ledger-assigned id.
#[derive(Debug, Clone)]
pub struct SpanDraft {
    /// See [`Span::job`].
    pub job: u32,
    /// See [`Span::name`].
    pub name: String,
    /// See [`Span::category`].
    pub category: Category,
    /// See [`Span::task`].
    pub task: Option<usize>,
    /// See [`Span::attempt`].
    pub attempt: Option<usize>,
    /// See [`Span::lane`].
    pub lane: Option<usize>,
    /// See [`Span::start_ns`].
    pub start_ns: u64,
    /// See [`Span::dur_ns`].
    pub dur_ns: u64,
    /// See [`Span::deps`].
    pub deps: Vec<SpanId>,
    /// See [`Span::meta`].
    pub meta: Vec<(String, String)>,
}

impl SpanDraft {
    /// A minimal draft; builder methods fill in the rest.
    pub fn new(job: u32, name: impl Into<String>, category: Category) -> SpanDraft {
        SpanDraft {
            job,
            name: name.into(),
            category,
            task: None,
            attempt: None,
            lane: None,
            start_ns: 0,
            dur_ns: 0,
            deps: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Builder: task + attempt identity.
    pub fn task_attempt(mut self, task: usize, attempt: usize) -> SpanDraft {
        self.task = Some(task);
        self.attempt = Some(attempt);
        self
    }

    /// Builder: scheduling lane.
    pub fn lane(mut self, lane: usize) -> SpanDraft {
        self.lane = Some(lane);
        self
    }

    /// Builder: time interval in nanoseconds since the tracer epoch.
    pub fn at(mut self, start_ns: u64, dur_ns: u64) -> SpanDraft {
        self.start_ns = start_ns;
        self.dur_ns = dur_ns;
        self
    }

    /// Builder: add a dependency edge.
    pub fn dep(mut self, id: SpanId) -> SpanDraft {
        self.deps.push(id);
        self
    }

    /// Builder: add dependency edges.
    pub fn deps(mut self, ids: impl IntoIterator<Item = SpanId>) -> SpanDraft {
        self.deps.extend(ids);
        self
    }

    /// Builder: add a metadata entry.
    pub fn meta(mut self, key: impl Into<String>, value: impl ToString) -> SpanDraft {
        self.meta.push((key.into(), value.to_string()));
        self
    }
}

/// An instant event — something that happened at a point in time
/// (a panic, a node death, one shuffle run moving).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Job ordinal within the ledger.
    pub job: u32,
    /// Event name ("panic", "node_death", "shuffle_run", …).
    pub name: String,
    /// Timestamp, nanoseconds since the tracer epoch.
    pub ts_ns: u64,
    /// Small key/value annotations.
    pub meta: Vec<(String, String)>,
}

/// An immutable snapshot of everything a [`Tracer`] collected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLedger {
    /// Job names, indexed by job ordinal.
    pub jobs: Vec<String>,
    /// Completed spans, in emission order.
    pub spans: Vec<Span>,
    /// Instant events, in emission order.
    pub events: Vec<Event>,
}

impl TraceLedger {
    /// The canonical timestamp-free rendering of the ledger: one line
    /// per job, span and event carrying everything *except*
    /// `start_ns` / `dur_ns` / `ts_ns`. Two runs with the same seed
    /// (and the same fault plan) must produce identical signatures —
    /// the determinism property the trace tests assert.
    pub fn signature(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.jobs.len() + self.spans.len() + self.events.len());
        for (i, name) in self.jobs.iter().enumerate() {
            lines.push(format!("job {i} {name}"));
        }
        for s in &self.spans {
            lines.push(format!(
                "span {} j{} {} cat={} task={:?} attempt={:?} lane={:?} deps={:?} meta={:?}",
                s.id,
                s.job,
                s.name,
                s.category.name(),
                s.task,
                s.attempt,
                s.lane,
                s.deps,
                s.meta
            ));
        }
        for e in &self.events {
            lines.push(format!("event j{} {} meta={:?}", e.job, e.name, e.meta));
        }
        lines
    }

    /// Earliest span start (0 for an empty ledger).
    pub fn origin_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0)
    }

    /// Latest span end (0 for an empty ledger).
    pub fn horizon_ns(&self) -> u64 {
        self.spans.iter().map(Span::end_ns).max().unwrap_or(0)
    }

    /// Total traced makespan: latest end minus earliest start.
    pub fn makespan_ns(&self) -> u64 {
        self.horizon_ns().saturating_sub(self.origin_ns())
    }

    /// Spans belonging to one job, in emission order.
    pub fn job_spans(&self, job: u32) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.job == job)
    }
}

struct Inner {
    jobs: Vec<String>,
    spans: Vec<Span>,
    events: Vec<Event>,
}

/// The collector. Cheap to share (`Arc<Tracer>`), with one short
/// mutex section per *merge* (a whole phase's worth of spans), not per
/// record — workers never touch the lock.
pub struct Tracer {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("tracer lock");
        f.debug_struct("Tracer")
            .field("jobs", &inner.jobs.len())
            .field("spans", &inner.spans.len())
            .field("events", &inner.events.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer whose epoch is *now*.
    pub fn new() -> Tracer {
        Tracer {
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                jobs: Vec::new(),
                spans: Vec::new(),
                events: Vec::new(),
            }),
        }
    }

    /// Nanoseconds since the tracer epoch, right now.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Convert a captured [`Instant`] into nanoseconds since the
    /// epoch (clamped to 0 for instants predating the tracer).
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Register a job; returns its ordinal. Called once per job, in
    /// submission order.
    pub fn begin_job(&self, name: &str) -> u32 {
        let mut inner = self.inner.lock().expect("tracer lock");
        inner.jobs.push(name.to_string());
        (inner.jobs.len() - 1) as u32
    }

    /// Append a completed span; returns its ledger id.
    pub fn add_span(&self, draft: SpanDraft) -> SpanId {
        let mut inner = self.inner.lock().expect("tracer lock");
        let id = inner.spans.len() as SpanId;
        inner.spans.push(Span {
            id,
            job: draft.job,
            name: draft.name,
            category: draft.category,
            task: draft.task,
            attempt: draft.attempt,
            lane: draft.lane,
            start_ns: draft.start_ns,
            dur_ns: draft.dur_ns,
            deps: draft.deps,
            meta: draft.meta,
        });
        id
    }

    /// Append an instant event.
    pub fn add_event(
        &self,
        job: u32,
        name: impl Into<String>,
        ts_ns: u64,
        meta: Vec<(String, String)>,
    ) {
        let mut inner = self.inner.lock().expect("tracer lock");
        inner.events.push(Event {
            job,
            name: name.into(),
            ts_ns,
            meta,
        });
    }

    /// Snapshot the ledger collected so far.
    pub fn ledger(&self) -> TraceLedger {
        let inner = self.inner.lock().expect("tracer lock");
        TraceLedger {
            jobs: inner.jobs.clone(),
            spans: inner.spans.clone(),
            events: inner.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_sequential_and_ledger_snapshots() {
        let t = Tracer::new();
        let job = t.begin_job("j");
        assert_eq!(job, 0);
        let a = t.add_span(SpanDraft::new(job, "map", Category::Compute).at(0, 10));
        let b = t.add_span(
            SpanDraft::new(job, "map", Category::Recovery)
                .task_attempt(0, 1)
                .dep(a)
                .at(10, 5),
        );
        assert_eq!((a, b), (0, 1));
        t.add_event(job, "panic", 9, vec![("task".into(), "0".into())]);
        let ledger = t.ledger();
        assert_eq!(ledger.jobs, vec!["j"]);
        assert_eq!(ledger.spans.len(), 2);
        assert_eq!(ledger.spans[1].deps, vec![0]);
        assert_eq!(ledger.events.len(), 1);
        assert_eq!(ledger.makespan_ns(), 15);
    }

    #[test]
    fn signature_ignores_timestamps() {
        let build = |shift: u64| {
            let t = Tracer::new();
            let job = t.begin_job("wc");
            let a = t.add_span(
                SpanDraft::new(job, "map", Category::Compute)
                    .task_attempt(3, 0)
                    .at(shift, 100 + shift),
            );
            t.add_span(
                SpanDraft::new(job, "shuffle", Category::Shuffle)
                    .dep(a)
                    .at(shift + 100, 7)
                    .meta("runs", 4),
            );
            t.add_event(
                job,
                "shuffle_run",
                shift + 101,
                vec![("map".into(), "3".into())],
            );
            t.ledger().signature()
        };
        assert_eq!(build(0), build(12345));
    }

    #[test]
    fn signature_sees_structural_differences() {
        let t1 = Tracer::new();
        let j = t1.begin_job("a");
        t1.add_span(SpanDraft::new(j, "map", Category::Compute).task_attempt(0, 0));
        let t2 = Tracer::new();
        let j = t2.begin_job("a");
        t2.add_span(SpanDraft::new(j, "map", Category::Recovery).task_attempt(0, 0));
        assert_ne!(t1.ledger().signature(), t2.ledger().signature());
    }

    #[test]
    fn category_names_stable() {
        let names: Vec<&str> = CATEGORIES.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["compute", "shuffle", "overhead", "recovery", "serve", "pig"]
        );
    }
}
