//! ASCII dashboard rendering of a metrics snapshot.
//!
//! The Gantt view ([`crate::gantt`]) draws a finished trace; this is
//! its live-serving sibling: given a [`MetricsSnapshot`] pulled from a
//! running daemon it draws admission state (gauges), the counter
//! table, and one bar chart per histogram — log2 buckets on the rows,
//! `#` bars scaled to the fullest bucket, summary percentiles in the
//! header. Pure function of the snapshot, so a deterministic snapshot
//! renders to deterministic bytes.

use crate::metrics::{bucket_hi, bucket_lo, MetricsSnapshot};

/// Largest bar width in characters.
const BAR_W: usize = 40;

fn human(v: u64) -> String {
    match v {
        0..=999 => format!("{v}"),
        1_000..=999_999 => format!("{:.1}k", v as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}M", v as f64 / 1e6),
        _ => format!("{:.1}G", v as f64 / 1e9),
    }
}

/// Render the snapshot as a fixed-width ASCII dashboard, `width`
/// columns wide (clamped to at least 40).
pub fn render_dashboard(snap: &MetricsSnapshot, width: usize) -> String {
    let width = width.max(40);
    let mut out = String::new();
    let rule = "=".repeat(width);
    out.push_str(&rule);
    out.push_str("\nmetrics dashboard\n");

    if !snap.gauges.is_empty() {
        out.push_str(&format!("{}\n-- gauges (live)\n", "-".repeat(width)));
        let kw = snap.gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &snap.gauges {
            out.push_str(&format!("  {k:kw$}  {v}\n"));
        }
    }

    if !snap.counters.is_empty() {
        out.push_str(&format!(
            "{}\n-- counters (cumulative)\n",
            "-".repeat(width)
        ));
        let kw = snap
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0);
        for (k, v) in &snap.counters {
            out.push_str(&format!("  {k:kw$}  {v}\n"));
        }
    }

    for (name, h) in &snap.histograms {
        out.push_str(&format!("{}\n-- histogram {name}\n", "-".repeat(width)));
        if h.count() == 0 {
            out.push_str("  (empty)\n");
            continue;
        }
        out.push_str(&format!(
            "  count={} min={} p50={} p95={} p99={} max={} mean={:.1}\n",
            h.count(),
            h.min().unwrap_or(0),
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
            h.max().unwrap_or(0),
            h.mean(),
        ));
        let buckets: Vec<(usize, u64)> = h.nonempty_buckets().collect();
        let fullest = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
        let lo = buckets.first().map(|&(i, _)| i).unwrap_or(0);
        let hi = buckets.last().map(|&(i, _)| i).unwrap_or(0);
        for i in lo..=hi {
            let c = h
                .nonempty_buckets()
                .find(|&(j, _)| j == i)
                .map(|(_, c)| c)
                .unwrap_or(0);
            let bar = ((c as u128 * BAR_W as u128 / fullest as u128) as usize).min(BAR_W);
            let bar = if c > 0 { bar.max(1) } else { 0 };
            out.push_str(&format!(
                "  [{:>6} .. {:>6}] {:<BAR_W$} {}\n",
                human(bucket_lo(i)),
                human(bucket_hi(i)),
                "#".repeat(bar),
                c,
            ));
        }
    }

    if snap.is_empty() {
        out.push_str("(no metrics)\n");
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let m = MetricsRegistry::new();
        assert!(render_dashboard(&m.snapshot(), 60).contains("(no metrics)"));
    }

    #[test]
    fn sections_and_bars_render() {
        let m = MetricsRegistry::new();
        m.gauge_set("serve.queue_depth", 2);
        m.counter_add("serve.tenant.acme.batches_admitted", 9);
        for v in [10u64, 11, 12, 500, 501, 502, 503] {
            m.observe("serve.tenant.acme.latency_us", v);
        }
        let dash = render_dashboard(&m.snapshot(), 72);
        assert!(dash.contains("-- gauges"));
        assert!(dash.contains("serve.queue_depth  2"));
        assert!(dash.contains("-- counters"));
        assert!(dash.contains("-- histogram serve.tenant.acme.latency_us"));
        assert!(dash.contains("p95="));
        assert!(dash.contains('#'));
        // Deterministic: same snapshot, same bytes.
        assert_eq!(dash, render_dashboard(&m.snapshot(), 72));
    }

    #[test]
    fn human_units() {
        assert_eq!(human(999), "999");
        assert_eq!(human(20_000), "20.0k");
        assert_eq!(human(3_500_000_000), "3.5G");
    }
}
