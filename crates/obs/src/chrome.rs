//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Array Format variant wrapped in an object —
//! `{"traceEvents": [...]}` — which both `chrome://tracing` and
//! Perfetto accept. Mapping:
//!
//! * span → complete event (`"ph":"X"`) with microsecond `ts`/`dur`,
//!   `pid` = job ordinal, `tid` = display lane;
//! * instant event → `"ph":"i"` with thread scope;
//! * job names → `process_name` metadata events (`"ph":"M"`);
//! * span category, task/attempt and metadata land in `args` so they
//!   show in the selection panel.
//!
//! Spans that carry no explicit lane (real-pool runs don't know which
//! worker executed which attempt deterministically) are packed onto
//! display lanes greedily: each span takes the lowest-numbered lane
//! whose previous span has already ended. That keeps the rendering
//! compact without inventing fake scheduling facts — the lane is a
//! display hint, not a claim.

use crate::trace::{Span, TraceLedger};

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn args_json(pairs: &[(String, String)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", esc(k), esc(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Assign display lanes to spans that don't carry one. Spans with an
/// explicit lane keep it; the rest are packed greedily by start time
/// onto lanes numbered after the largest explicit lane.
pub(crate) fn display_lanes(spans: &[Span]) -> Vec<usize> {
    let base = spans
        .iter()
        .filter_map(|s| s.lane)
        .max()
        .map_or(0, |l| l + 1);
    let mut lanes = vec![0usize; spans.len()];
    // (lane, busy_until) for auto-assigned lanes, per job.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].job, spans[i].start_ns, spans[i].id));
    let mut free: Vec<(u32, usize, u64)> = Vec::new(); // (job, lane, busy_until)
    for i in order {
        let s = &spans[i];
        if let Some(l) = s.lane {
            lanes[i] = l;
            continue;
        }
        let slot = free
            .iter_mut()
            .filter(|(job, _, until)| *job == s.job && *until <= s.start_ns)
            .min_by_key(|(_, lane, _)| *lane);
        match slot {
            Some(entry) => {
                entry.2 = s.end_ns();
                lanes[i] = entry.1;
            }
            None => {
                let lane = base + free.iter().filter(|(job, _, _)| *job == s.job).count();
                free.push((s.job, lane, s.end_ns()));
                lanes[i] = lane;
            }
        }
    }
    lanes
}

/// Render the ledger as Chrome `trace_event` JSON
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing` and
/// Perfetto. Timestamps are converted from nanoseconds to the
/// format's microseconds (fractional, so nothing is lost).
pub fn chrome_trace(ledger: &TraceLedger) -> String {
    let us = |ns: u64| ns as f64 / 1000.0;
    let mut events: Vec<String> =
        Vec::with_capacity(ledger.spans.len() + ledger.events.len() + ledger.jobs.len());

    for (i, name) in ledger.jobs.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{i},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    let lanes = display_lanes(&ledger.spans);
    for (span, lane) in ledger.spans.iter().zip(&lanes) {
        let mut args: Vec<(String, String)> =
            vec![("category".into(), span.category.name().into())];
        if let Some(task) = span.task {
            args.push(("task".into(), task.to_string()));
        }
        if let Some(attempt) = span.attempt {
            args.push(("attempt".into(), attempt.to_string()));
        }
        args.extend(span.meta.iter().cloned());
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{}}}",
            esc(&span.name),
            span.category.name(),
            us(span.start_ns),
            us(span.dur_ns),
            span.job,
            lane,
            args_json(&args)
        ));
    }

    for ev in &ledger.events {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":{},\"tid\":0,\"args\":{}}}",
            esc(&ev.name),
            us(ev.ts_ns),
            ev.job,
            args_json(&ev.meta)
        ));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Category, SpanDraft, Tracer};

    fn sample_ledger() -> TraceLedger {
        let t = Tracer::new();
        let j = t.begin_job("word\"count");
        let a = t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .task_attempt(0, 0)
                .at(0, 1500),
        );
        t.add_span(
            SpanDraft::new(j, "shuffle", Category::Shuffle)
                .dep(a)
                .at(1500, 250)
                .meta("runs", 3),
        );
        t.add_event(j, "panic", 700, vec![("task".into(), "0".into())]);
        t.ledger()
    }

    #[test]
    fn emits_wrapped_trace_events() {
        let json = chrome_trace(&sample_ledger());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\""));
        // ns → µs conversion.
        assert!(json.contains("\"ts\":1.5"));
        // Escaped job name.
        assert!(json.contains("word\\\"count"));
        // Span metadata lands in args.
        assert!(json.contains("\"runs\":\"3\""));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = chrome_trace(&sample_ledger());
        let (mut depth, mut min_depth) = (0i64, 0i64);
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    min_depth = min_depth.min(depth);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(min_depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn lanes_pack_without_overlap() {
        let t = Tracer::new();
        let j = t.begin_job("j");
        // Three overlapping spans → three lanes; a fourth after them
        // reuses lane 0.
        for i in 0..3 {
            t.add_span(
                SpanDraft::new(j, "map", Category::Compute)
                    .task_attempt(i, 0)
                    .at(0, 100),
            );
        }
        t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .task_attempt(3, 0)
                .at(100, 50),
        );
        let ledger = t.ledger();
        let lanes = display_lanes(&ledger.spans);
        let mut first_three = lanes[..3].to_vec();
        first_three.sort_unstable();
        assert_eq!(first_three, vec![0, 1, 2]);
        assert_eq!(lanes[3], 0);
    }

    #[test]
    fn explicit_lanes_preserved() {
        let t = Tracer::new();
        let j = t.begin_job("sim");
        t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .lane(5)
                .at(0, 10),
        );
        let ledger = t.ledger();
        assert_eq!(display_lanes(&ledger.spans), vec![5]);
        assert!(chrome_trace(&ledger).contains("\"tid\":5"));
    }
}
