//! Structured job tracing for the simulated Hadoop substrate.
//!
//! The paper's central empirical claim (Figure 2) is a *timing* story —
//! speedup that saturates when 2–12 nodes cannot be kept busy — but a
//! flat per-task `TaskStats` list cannot say *why* a stage is slow:
//! straggler, shuffle wait, or recovery re-execution. Hadoop answers
//! this with the JobHistory / timeline server; this crate is our
//! equivalent:
//!
//! * [`Tracer`] — a structured event ledger. The engine records task
//!   attempt lifecycle (start/finish/panic/retry/speculative win),
//!   shuffle run movement, combiner activity and every chaos recovery
//!   action as [`Span`]s and instant [`Event`]s. Recording is
//!   lock-cheap: workers buffer per-attempt records locally and the
//!   engine merges them into the ledger once per phase, in canonical
//!   (task, attempt) order, so two runs with the same seed produce
//!   ledgers that are identical modulo wall-clock timestamps
//!   ([`TraceLedger::signature`]).
//! * [`chrome_trace`] — a Chrome `trace_event`-format JSON exporter;
//!   the output loads directly in `chrome://tracing` or Perfetto, for
//!   real *and* simulated-time traces.
//! * [`critical_path`] — walks the span dependency DAG (map → shuffle
//!   barrier → reduce, plus retry edges and scheduling lanes) and
//!   reports the longest chain with per-category attribution
//!   (compute / shuffle / overhead / recovery).
//! * [`render_gantt`] — an ASCII Gantt chart of the ledger, one row
//!   per scheduling lane.
//!
//! The crate is dependency-free and sits *below* `mrmc-mapreduce` in
//! the workspace graph: the engine, the simulated cluster and the
//! bench binaries all emit into the same ledger types.

//! A second, live-serving observability surface sits alongside the
//! ledger: [`metrics`] is a deterministic registry of counters, gauges
//! and log2-bucketed histograms (exact-from-bucket percentiles,
//! snapshot/delta semantics), [`dashboard`] renders a snapshot as an
//! ASCII dashboard the way [`gantt`] renders a trace, and [`json`] is
//! the shared JSON document builder both the metrics plane and the
//! bench harness render through.

pub mod chrome;
pub mod critical;
pub mod dashboard;
pub mod gantt;
pub mod json;
pub mod metrics;
pub mod trace;

pub use chrome::chrome_trace;
pub use critical::{critical_path, CriticalPath, PathStep};
pub use dashboard::render_dashboard;
pub use gantt::render_gantt;
pub use json::Json;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use trace::{Category, Event, Span, SpanDraft, SpanId, TraceLedger, Tracer};
