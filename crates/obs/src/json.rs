//! Minimal JSON document builder shared by the harness binaries and
//! the metrics plane.
//!
//! serde is unavailable offline, and before this module every binary
//! hand-rolled its own `format!` JSON (each with its own escaping and
//! float bugs waiting to happen). Build a [`Json`] tree and render it
//! with [`Json::pretty`] — the output matches the
//! `serde_json::to_string_pretty` style (two-space indent) the early
//! harness produced. The module lives here (rather than in
//! `mrmc-bench`, its original home, which now re-exports it) so
//! [`crate::metrics`] snapshots can render JSON without a dependency
//! cycle.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, counts, ids).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null` (JSON has no
    /// NaN/Infinity), finite ones use the shortest round-trippable
    /// representation.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// A pre-rendered numeric token — see [`Json::fixed`].
    Raw(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A float rendered with fixed precision (`digits` decimals), for
    /// fields where the shortest representation is noisy (timings,
    /// ratios). Non-finite values still become `null`.
    pub fn fixed(v: f64, digits: usize) -> Json {
        if v.is_finite() {
            Json::Raw(format!("{v:.digits$}"))
        } else {
            Json::Null
        }
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, indent: usize, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Raw(tok) => out.push_str(tok),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                let pad = " ".repeat(indent + 2);
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render(indent + 2, out);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                let pad = " ".repeat(indent + 2);
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.render(indent + 2, out);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control
/// chars).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write a document to `path`, panicking with the path on error (these
/// are CLI endpoints; a failed artifact write should abort the run).
pub fn write_file(path: &str, doc: &Json) {
    std::fs::write(path, doc.pretty()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::UInt(7).pretty(), "7");
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(Json::F64(98.5).pretty(), "98.5");
        assert_eq!(Json::F64(f64::NAN).pretty(), "null");
        assert_eq!(Json::fixed(1.23456, 3).pretty(), "1.235");
        assert_eq!(Json::fixed(f64::INFINITY, 3).pretty(), "null");
        assert_eq!(Json::Str("a\"b\\c\n".into()).pretty(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn empty_containers_compact() {
        assert_eq!(Json::arr([]).pretty(), "[]");
        assert_eq!(Json::obj(Vec::<(&str, Json)>::new()).pretty(), "{}");
    }

    #[test]
    fn nesting_indents_two_spaces() {
        let doc = Json::obj([
            ("a", Json::from(1u64)),
            (
                "b",
                Json::arr([Json::from("x"), Json::obj([("c", Json::Null)])]),
            ),
        ]);
        assert_eq!(
            doc.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\",\n    {\n      \"c\": null\n    }\n  ]\n}"
        );
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("tab\there"), "tab\\there");
    }
}
