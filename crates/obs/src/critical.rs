//! Critical-path analysis over the span dependency DAG.
//!
//! The makespan of a traced job is `horizon − origin`. The critical
//! path is the dependency chain that *explains* that makespan: start
//! from the latest-ending span and repeatedly hop to the
//! latest-ending dependency, accumulating each span's duration into
//! its [`Category`](crate::trace::Category) bucket. When a span has
//! no recorded dependencies but does not start at the origin, we fall
//! back to the latest-ending span that finishes at or before its
//! start (cross-job chaining: stage N's first span waits on stage
//! N−1's last). Gaps that no span covers (scheduler idle between a
//! dep finishing and the dependent starting) are reported as
//! unattributed time, so `coverage()` honestly states how much of the
//! makespan the categorized spans explain.

use crate::trace::{Category, Span, SpanId, TraceLedger, CATEGORIES};

/// One hop on the critical path (stored root-first after analysis).
#[derive(Debug, Clone)]
pub struct PathStep {
    /// The span on the path.
    pub span: SpanId,
    /// Copied span name (so reports don't need the ledger).
    pub name: String,
    /// Copied category.
    pub category: Category,
    /// Copied duration.
    pub dur_ns: u64,
}

/// The longest dependency chain through a ledger, with per-category
/// attribution of the makespan.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Steps from the earliest span on the path to the latest.
    pub steps: Vec<PathStep>,
    /// Total ledger makespan (latest end − earliest start).
    pub makespan_ns: u64,
    /// Nanoseconds attributed to each category, indexed like
    /// [`CATEGORIES`].
    pub by_category: [u64; CATEGORIES.len()],
    /// Makespan time covered by no span on the path (idle gaps).
    pub unattributed_ns: u64,
}

impl CriticalPath {
    /// Attributed time for one category.
    pub fn category_ns(&self, cat: Category) -> u64 {
        let idx = CATEGORIES
            .iter()
            .position(|c| *c == cat)
            .expect("known category");
        self.by_category[idx]
    }

    /// Sum of all categorized time on the path.
    pub fn attributed_ns(&self) -> u64 {
        self.by_category.iter().sum()
    }

    /// Fraction of the makespan explained by categorized spans
    /// (1.0 for an empty ledger).
    pub fn coverage(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 1.0;
        }
        self.attributed_ns() as f64 / self.makespan_ns as f64
    }

    /// Multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let ms = |ns: u64| ns as f64 / 1.0e6;
        out.push_str(&format!(
            "critical path: {} steps, makespan {:.3} ms, coverage {:.1}%\n",
            self.steps.len(),
            ms(self.makespan_ns),
            self.coverage() * 100.0
        ));
        for (i, cat) in CATEGORIES.iter().enumerate() {
            let ns = self.by_category[i];
            if ns == 0 {
                continue;
            }
            let pct = if self.makespan_ns == 0 {
                0.0
            } else {
                ns as f64 * 100.0 / self.makespan_ns as f64
            };
            out.push_str(&format!(
                "  {:>9}: {:>12.3} ms ({:>5.1}%)\n",
                cat.name(),
                ms(ns),
                pct
            ));
        }
        if self.unattributed_ns > 0 {
            let pct = self.unattributed_ns as f64 * 100.0 / self.makespan_ns.max(1) as f64;
            out.push_str(&format!(
                "  {:>9}: {:>12.3} ms ({:>5.1}%)\n",
                "idle",
                ms(self.unattributed_ns),
                pct
            ));
        }
        out
    }
}

/// Find the latest-ending span; `None` for an empty ledger.
fn latest_span(spans: &[Span]) -> Option<&Span> {
    spans.iter().max_by_key(|s| (s.end_ns(), s.id))
}

/// Among `spans`, the latest-ending one that finishes at or before
/// `cutoff_ns` and is not the span itself.
fn predecessor_by_time(spans: &[Span], cutoff_ns: u64, exclude: SpanId) -> Option<&Span> {
    spans
        .iter()
        .filter(|s| s.id != exclude && s.end_ns() <= cutoff_ns)
        .max_by_key(|s| (s.end_ns(), s.id))
}

/// Walk the span DAG backwards from the latest-ending span and return
/// the critical path with per-category attribution.
pub fn critical_path(ledger: &TraceLedger) -> CriticalPath {
    let spans = &ledger.spans;
    let mut by_category = [0u64; CATEGORIES.len()];
    let makespan_ns = ledger.makespan_ns();
    let origin = ledger.origin_ns();

    let mut steps_rev: Vec<PathStep> = Vec::new();
    let mut attributed: u64 = 0;
    let mut cursor = latest_span(spans);
    // Guard against dependency cycles (malformed ledgers): never
    // visit more spans than exist.
    let mut visited = 0usize;
    while let Some(span) = cursor {
        visited += 1;
        if visited > spans.len() {
            break;
        }
        let cat_idx = CATEGORIES
            .iter()
            .position(|c| *c == span.category)
            .expect("known category");
        by_category[cat_idx] += span.dur_ns;
        attributed += span.dur_ns;
        steps_rev.push(PathStep {
            span: span.id,
            name: span.name.clone(),
            category: span.category,
            dur_ns: span.dur_ns,
        });
        if span.start_ns <= origin {
            break;
        }
        // Prefer an explicit dependency edge: the latest-ending dep
        // is what actually gated this span's start.
        let dep = span
            .deps
            .iter()
            .filter_map(|id| spans.iter().find(|s| s.id == *id))
            .max_by_key(|s| (s.end_ns(), s.id));
        cursor = match dep {
            Some(d) => Some(d),
            // No recorded deps but not at the origin: time-order
            // fallback for cross-job chaining.
            None => predecessor_by_time(spans, span.start_ns, span.id),
        };
    }

    steps_rev.reverse();
    CriticalPath {
        steps: steps_rev,
        makespan_ns,
        by_category,
        unattributed_ns: makespan_ns.saturating_sub(attributed.min(makespan_ns)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Category, SpanDraft, Tracer};

    #[test]
    fn empty_ledger_full_coverage() {
        let cp = critical_path(&Tracer::new().ledger());
        assert!(cp.steps.is_empty());
        assert_eq!(cp.makespan_ns, 0);
        assert_eq!(cp.coverage(), 1.0);
    }

    #[test]
    fn chain_with_deps_fully_attributed() {
        let t = Tracer::new();
        let j = t.begin_job("j");
        let setup = t.add_span(SpanDraft::new(j, "setup", Category::Overhead).at(0, 10));
        // Two parallel maps; the longer one gates the shuffle.
        let m0 = t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .task_attempt(0, 0)
                .dep(setup)
                .at(10, 100),
        );
        let m1 = t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .task_attempt(1, 0)
                .dep(setup)
                .at(10, 40),
        );
        let sh = t.add_span(
            SpanDraft::new(j, "shuffle", Category::Shuffle)
                .deps([m0, m1])
                .at(110, 20),
        );
        t.add_span(
            SpanDraft::new(j, "reduce", Category::Compute)
                .task_attempt(0, 0)
                .dep(sh)
                .at(130, 30),
        );
        let cp = critical_path(&t.ledger());
        assert_eq!(cp.makespan_ns, 160);
        // Path: setup → map0 (the longer map) → shuffle → reduce.
        let names: Vec<&str> = cp.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["setup", "map", "shuffle", "reduce"]);
        assert_eq!(cp.attributed_ns(), 160);
        assert_eq!(cp.coverage(), 1.0);
        assert_eq!(cp.category_ns(Category::Overhead), 10);
        assert_eq!(cp.category_ns(Category::Compute), 130);
        assert_eq!(cp.category_ns(Category::Shuffle), 20);
        assert_eq!(cp.unattributed_ns, 0);
    }

    #[test]
    fn time_order_fallback_bridges_jobs() {
        let t = Tracer::new();
        let j0 = t.begin_job("stage0");
        t.add_span(SpanDraft::new(j0, "map", Category::Compute).at(0, 50));
        let j1 = t.begin_job("stage1");
        // No dep edge across jobs, but stage1 starts when stage0 ends.
        t.add_span(SpanDraft::new(j1, "map", Category::Compute).at(50, 50));
        let cp = critical_path(&t.ledger());
        assert_eq!(cp.steps.len(), 2);
        assert_eq!(cp.attributed_ns(), 100);
        assert_eq!(cp.coverage(), 1.0);
    }

    #[test]
    fn idle_gap_reported_as_unattributed() {
        let t = Tracer::new();
        let j = t.begin_job("j");
        let a = t.add_span(SpanDraft::new(j, "map", Category::Compute).at(0, 10));
        t.add_span(
            SpanDraft::new(j, "reduce", Category::Compute)
                .dep(a)
                .at(30, 10),
        );
        let cp = critical_path(&t.ledger());
        assert_eq!(cp.makespan_ns, 40);
        assert_eq!(cp.attributed_ns(), 20);
        assert_eq!(cp.unattributed_ns, 20);
        assert!((cp.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recovery_retry_edge_on_path() {
        let t = Tracer::new();
        let j = t.begin_job("j");
        let a0 = t.add_span(
            SpanDraft::new(j, "map", Category::Compute)
                .task_attempt(0, 0)
                .at(0, 30)
                .meta("error", "panic"),
        );
        let a1 = t.add_span(
            SpanDraft::new(j, "map", Category::Recovery)
                .task_attempt(0, 1)
                .dep(a0)
                .at(30, 30),
        );
        t.add_span(
            SpanDraft::new(j, "shuffle", Category::Shuffle)
                .dep(a1)
                .at(60, 5),
        );
        let cp = critical_path(&t.ledger());
        assert_eq!(cp.category_ns(Category::Recovery), 30);
        assert_eq!(cp.coverage(), 1.0);
    }
}
